//! The XZ\* index (§IV).
//!
//! XZ\* represents a trajectory by a *(quadrant sequence, position code)*
//! pair: the quadrant sequence names the smallest enlarged element covering
//! the trajectory's MBR (as in XZ-Ordering), and the position code names
//! the combination of the element's four sub-quads the trajectory actually
//! touches. A bijective function maps every index space to a `u64`
//! preserving depth-first order, so spatially close index spaces get close
//! integers and queries become few contiguous rowkey scans.

mod position_code;
mod pruning;
mod topk;

pub use position_code::{io_reduction, surviving_codes, PositionCode, QuadSet, CODE_SETS};
pub use pruning::{GlobalPruning, PruneStats, PruningConfig, QueryContext};
pub use topk::{BestFirst, SpaceCandidate};

use crate::quad::{Cell, MAX_RESOLUTION};
use serde::{Deserialize, Serialize};
use trass_geo::{Mbr, Point};

/// One XZ\* index space: an enlarged element plus a position code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndexSpace {
    /// The element's cell (its quadrant sequence).
    pub cell: Cell,
    /// The position code (1–10).
    pub code: PositionCode,
}

/// The XZ\* index over the unit square.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct XzStar {
    max_resolution: u8,
}

impl XzStar {
    /// Creates an index with the given maximum resolution (the paper's
    /// default is 16).
    ///
    /// # Panics
    /// Panics unless `1 <= max_resolution <= 30` (the `u64` encoding bound).
    pub fn new(max_resolution: u8) -> Self {
        assert!(
            (1..=MAX_RESOLUTION).contains(&max_resolution),
            "max_resolution must be in 1..={MAX_RESOLUTION}"
        );
        XzStar { max_resolution }
    }

    /// The configured maximum resolution.
    #[inline]
    pub fn max_resolution(&self) -> u8 {
        self.max_resolution
    }

    /// Lemmas 1–2: the quadrant-sequence length for an MBR in unit space.
    ///
    /// `l1 = ⌊log₀.₅ max(w, h)⌋`; use `l1 + 1` iff the enlarged element at
    /// that resolution, anchored at the cell containing the MBR's lower-left
    /// corner, still covers the MBR. Degenerate (point) MBRs land at the
    /// maximum resolution — the paper's Fig. 12(a) peak.
    pub fn sequence_length(&self, mbr: &Mbr) -> u8 {
        crate::quad::sequence_length(mbr, self.max_resolution)
    }

    /// The smallest enlarged element covering `mbr` (`SEE(mbr)`,
    /// Definition 6): the cell containing the MBR's lower-left corner at
    /// the sequence-length resolution.
    pub fn anchor_cell(&self, mbr: &Mbr) -> Cell {
        let level = self.sequence_length(mbr);
        Cell::containing(mbr.min_x, mbr.min_y, level)
    }

    /// The four sub-quad rectangles of a cell's enlarged element, in
    /// a, b, c, d order.
    pub fn quad_rects(cell: &Cell) -> [Mbr; 4] {
        let w = cell.width();
        let x0 = f64::from(cell.x) * w;
        let y0 = f64::from(cell.y) * w;
        [
            Mbr::new(x0, y0, x0 + w, y0 + w),                     // a
            Mbr::new(x0 + w, y0, x0 + 2.0 * w, y0 + w),           // b
            Mbr::new(x0, y0 + w, x0 + w, y0 + 2.0 * w),           // c
            Mbr::new(x0 + w, y0 + w, x0 + 2.0 * w, y0 + 2.0 * w), // d
        ]
    }

    /// The sub-quads of `cell`'s enlarged element touched by `points`.
    /// Quad membership uses half-open boundaries (a point exactly on the
    /// internal split lines belongs to the upper/right quad), matching the
    /// `fits` predicate of [`XzStar::sequence_length`].
    pub fn touched_quads(cell: &Cell, points: &[Point]) -> QuadSet {
        let w = cell.width();
        let split_x = f64::from(cell.x) * w + w;
        let split_y = f64::from(cell.y) * w + w;
        let mut set = QuadSet::EMPTY;
        for p in points {
            let qx = u8::from(p.x >= split_x);
            let qy = u8::from(p.y >= split_y);
            set = set.union(QuadSet(1 << ((qy << 1) | qx)));
            if set == QuadSet::ALL {
                break;
            }
        }
        set
    }

    /// Indexes a trajectory given its points in unit space.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn index_points(&self, points: &[Point]) -> IndexSpace {
        assert!(!points.is_empty(), "cannot index an empty trajectory");
        let Some(mbr) = Mbr::from_points(points.iter()) else {
            unreachable!("asserted non-empty just above")
        };
        let mut cell = self.anchor_cell(&mbr);
        loop {
            let set = Self::touched_quads(&cell, points);
            let code = PositionCode::from_quads(set)
                .unwrap_or_else(|| unreachable!("anchored quad sets are always feasible"));
            if code.0 == 10 && cell.level < self.max_resolution {
                // The trajectory fits entirely in quad-a, so a deeper
                // element represents it exactly. Unreachable for consistent
                // float inputs (the sequence-length predicate would already
                // have descended), kept as a defensive re-anchor.
                debug_assert!(false, "code 10 below max resolution");
                cell = Cell::containing(mbr.min_x, mbr.min_y, cell.level + 1);
                continue;
            }
            return IndexSpace { cell, code };
        }
    }

    /// Lemma 4: the number of index spaces in the subtree rooted at any
    /// element of resolution `l`, `N_is(l) = 13·4^{r−l} − 3` (for
    /// `1 ≤ l ≤ r`).
    pub fn n_is(&self, l: u8) -> u64 {
        debug_assert!(l >= 1 && l <= self.max_resolution);
        13 * 4u64.pow(u32::from(self.max_resolution - l)) - 3
    }

    /// First value of the reserved block for root-level (sequence length 0)
    /// index spaces. Regular values occupy `[0, root_block_start)`.
    pub fn root_block_start(&self) -> u64 {
        4 * self.n_is(1)
    }

    /// Total number of index values, including the root block.
    pub fn total_values(&self) -> u64 {
        self.root_block_start() + u64::from(PositionCode::REGULAR_COUNT)
    }

    /// The contiguous value range `[start, end]` covering *every* index
    /// space in the subtree rooted at `cell` (node-first DFS makes
    /// subtrees contiguous). The root covers all values including the
    /// reserved root block.
    pub fn subtree_range(&self, cell: &Cell) -> (u64, u64) {
        if cell.level == 0 {
            return (0, self.total_values() - 1);
        }
        let start = self.encode(&IndexSpace { cell: *cell, code: PositionCode::P1 });
        let end = start + self.n_is(cell.level) - 1;
        crate::debug_invariant!(start <= end, "subtree range must be non-empty");
        (start, end)
    }

    /// Definition 5: the index value `V(s, p)`.
    ///
    /// Index spaces are numbered in node-first depth-first order:
    /// `V(s,p) = Σᵢ qᵢ·N_is(i) + 9·(l−1) + (p−1)`, matching the paper's
    /// worked examples (`'0'` → 0–8, `'00'` → 9–18, `V('03',2) = 40`).
    /// Root-level spaces (l = 0, MBRs wider than half the space) use a
    /// reserved block after all regular values.
    pub fn encode(&self, space: &IndexSpace) -> u64 {
        let l = space.cell.level;
        let p = u64::from(space.code.0);
        if l == 0 {
            debug_assert!(p <= 9, "code 10 never occurs at the root (r >= 1)");
            let v = self.root_block_start() + p - 1;
            crate::debug_invariant!(
                self.decode(v).as_ref() == Some(space),
                "encode/decode bijectivity violated for root value {v}"
            );
            return v;
        }
        debug_assert!(p <= 9 || l == self.max_resolution, "code 10 only at max resolution");
        let mut v = 0u64;
        for (depth, &digit) in (1u8..).zip(space.cell.sequence().iter()) {
            v += u64::from(digit) * self.n_is(depth);
        }
        let v = v + 9 * (u64::from(l) - 1) + p - 1;
        crate::debug_invariant!(
            self.decode(v).as_ref() == Some(space),
            "encode/decode bijectivity violated for value {v}"
        );
        v
    }

    /// Inverse of [`XzStar::encode`].
    pub fn decode(&self, value: u64) -> Option<IndexSpace> {
        let root_start = self.root_block_start();
        if value >= root_start {
            let p = value - root_start + 1;
            if p > 9 {
                return None;
            }
            return Some(IndexSpace {
                cell: Cell::ROOT,
                code: PositionCode::new(u8::try_from(p).ok()?)?,
            });
        }
        let mut cell = Cell::ROOT;
        let mut rem = value;
        // Descend from the root: the root has no own codes in the regular
        // block, so the first step always picks a level-1 child.
        let n1 = self.n_is(1);
        cell = cell.child(u8::try_from(rem / n1).ok()?);
        rem %= n1;
        loop {
            if cell.level == self.max_resolution {
                debug_assert!(rem < 10);
                return Some(IndexSpace {
                    cell,
                    code: PositionCode::new(u8::try_from(rem).ok()? + 1)?,
                });
            }
            if rem < 9 {
                return Some(IndexSpace {
                    cell,
                    code: PositionCode::new(u8::try_from(rem).ok()? + 1)?,
                });
            }
            rem -= 9;
            let n_child = self.n_is(cell.level + 1);
            cell = cell.child(u8::try_from(rem / n_child).ok()?);
            rem %= n_child;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xz(r: u8) -> XzStar {
        XzStar::new(r)
    }

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn n_is_matches_lemma_4() {
        let x = xz(2);
        assert_eq!(x.n_is(2), 10, "a max-resolution element has 10 index spaces");
        assert_eq!(x.n_is(1), 49, "10*4 + 9 own");
        let x16 = xz(16);
        assert_eq!(x16.n_is(16), 10);
        assert_eq!(x16.n_is(15), 13 * 4 - 3);
    }

    #[test]
    fn paper_numbering_examples() {
        // Figure 4(a), r = 2: '0' gets 0..=8, '00' gets 9..=18.
        let x = xz(2);
        let v = |seq: &[u8], p: u8| {
            x.encode(&IndexSpace {
                cell: Cell::from_sequence(seq),
                code: PositionCode::new(p).unwrap(),
            })
        };
        assert_eq!(v(&[0], 1), 0);
        assert_eq!(v(&[0], 9), 8);
        assert_eq!(v(&[0, 0], 1), 9);
        assert_eq!(v(&[0, 0], 10), 18);
        assert_eq!(v(&[0, 1], 1), 19);
        // §IV-C worked examples: V('03', 2) = 40, V('03', 7) = 45.
        assert_eq!(v(&[0, 3], 2), 40);
        assert_eq!(v(&[0, 3], 7), 45);
        // The last regular element '33' (see DESIGN.md on the paper's
        // 196–205 typo): values 186..=195, total 196 regular values.
        assert_eq!(v(&[3, 3], 1), 186);
        assert_eq!(v(&[3, 3], 10), 195);
        assert_eq!(x.root_block_start(), 196);
    }

    #[test]
    fn encode_decode_roundtrip_exhaustive_r2() {
        let x = xz(2);
        let mut seen = std::collections::HashSet::new();
        for value in 0..x.total_values() {
            let space = x.decode(value).unwrap_or_else(|| panic!("decode({value})"));
            assert_eq!(x.encode(&space), value, "roundtrip at {value}");
            assert!(seen.insert(space), "duplicate space for {value}");
        }
        assert_eq!(seen.len() as u64, x.total_values());
    }

    #[test]
    fn encode_decode_roundtrip_exhaustive_r3() {
        let x = xz(3);
        for value in 0..x.total_values() {
            let space = x.decode(value).expect("decodable");
            assert_eq!(x.encode(&space), value);
            // Code validity by level.
            if space.cell.level < 3 {
                assert!(space.code.0 <= 9);
            }
        }
    }

    #[test]
    fn dfs_order_preserves_prefixes() {
        // All values under a prefix form one contiguous block of size
        // N_is(l) — the property that makes query ranges contiguous.
        let x = xz(3);
        let cell = Cell::from_sequence(&[2]);
        let lo = x.encode(&IndexSpace { cell, code: PositionCode::new(1).unwrap() });
        let hi = lo + x.n_is(1) - 1;
        for value in lo..=hi {
            let space = x.decode(value).unwrap();
            let seq = space.cell.sequence();
            assert_eq!(seq.first(), Some(&2), "value {value} escaped subtree");
        }
        // The next value starts the '3' subtree.
        let next = x.decode(hi + 1).unwrap();
        assert_eq!(next.cell.sequence().first(), Some(&3));
    }

    #[test]
    fn sequence_length_by_size() {
        let x = xz(16);
        // A tiny MBR lands at max resolution.
        assert_eq!(x.sequence_length(&Mbr::new(0.5, 0.5, 0.5 + 1e-9, 0.5 + 1e-9)), 16);
        // A degenerate (point) MBR lands at max resolution.
        assert_eq!(x.sequence_length(&Mbr::new(0.3, 0.3, 0.3, 0.3)), 16);
        // Bigger MBRs land at smaller resolutions.
        let l_big = x.sequence_length(&Mbr::new(0.1, 0.1, 0.6, 0.6));
        let l_small = x.sequence_length(&Mbr::new(0.1, 0.1, 0.2, 0.2));
        assert!(l_big < l_small);
        assert!(l_big <= 1);
    }

    #[test]
    fn enlarged_element_always_covers_mbr() {
        // The covering invariant behind Lemmas 1–2.
        let x = xz(12);
        let mut rng_state = 12345u64;
        let mut rnd = || {
            rng_state =
                rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng_state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..2000 {
            let x0 = rnd() * 0.99;
            let y0 = rnd() * 0.99;
            let w = rnd() * (1.0 - x0);
            let h = rnd() * (1.0 - y0);
            let mbr = Mbr::new(x0, y0, x0 + w, y0 + h);
            let cell = x.anchor_cell(&mbr);
            assert!(
                cell.enlarged().extended(1e-12).contains(&mbr),
                "EE {:?} does not cover {:?} (level {})",
                cell.enlarged(),
                mbr,
                cell.level
            );
        }
    }

    #[test]
    fn index_points_produces_expected_codes() {
        let x = xz(4);
        // A horizontal trajectory crossing the a|b split of its element.
        let horizontal = pts(&[(0.26, 0.26), (0.30, 0.26), (0.37, 0.26)]);
        let space = x.index_points(&horizontal);
        let quads = space.code.quads();
        assert!(quads.contains(QuadSet::A));
        assert!(!quads.contains(QuadSet::C), "no vertical extent");
        // A vertical trajectory gets a C-containing code.
        let vertical = pts(&[(0.26, 0.26), (0.26, 0.30), (0.26, 0.37)]);
        let v_space = x.index_points(&vertical);
        assert!(v_space.code.quads().contains(QuadSet::C));
        assert!(!v_space.code.quads().contains(QuadSet::B));
    }

    #[test]
    fn stay_point_trajectory_gets_code_10() {
        let x = xz(8);
        let stay = pts(&[(0.371, 0.442), (0.371, 0.442), (0.371, 0.442)]);
        let space = x.index_points(&stay);
        assert_eq!(space.cell.level, 8, "stays land at max resolution");
        assert_eq!(space.code.0, 10);
    }

    #[test]
    fn quad_rects_tile_the_enlarged_element() {
        let cell = Cell::new(3, 2, 3);
        let rects = XzStar::quad_rects(&cell);
        let ee = cell.enlarged();
        let area: f64 = rects.iter().map(|r| r.area()).sum();
        assert!((area - ee.area()).abs() < 1e-15);
        assert_eq!(rects[0], cell.mbr(), "quad a is the cell itself");
        for r in &rects {
            assert!(ee.contains(r));
        }
    }

    #[test]
    fn touched_quads_boundary_goes_upper_right() {
        let cell = Cell::new(0, 0, 1); // EE = [0,1)², splits at 0.5
        let set = XzStar::touched_quads(&cell, &pts(&[(0.5, 0.5)]));
        assert_eq!(set, QuadSet::D);
        let set = XzStar::touched_quads(&cell, &pts(&[(0.49, 0.5)]));
        assert_eq!(set, QuadSet::C);
    }

    #[test]
    fn root_block_encoding() {
        let x = xz(2);
        let space = IndexSpace { cell: Cell::ROOT, code: PositionCode::new(5).unwrap() };
        let v = x.encode(&space);
        assert_eq!(v, 196 + 4);
        assert_eq!(x.decode(v), Some(space));
        assert!(v < x.total_values());
        assert_eq!(x.decode(x.total_values()), None);
    }

    #[test]
    fn values_fit_u64_at_max_supported_resolution() {
        let x = xz(crate::quad::MAX_RESOLUTION);
        let total = x.total_values();
        assert!(total > 0, "no overflow");
        // Deepest, last index space encodes and decodes.
        let mut cell = Cell::ROOT;
        for _ in 0..crate::quad::MAX_RESOLUTION {
            cell = cell.child(3);
        }
        let space = IndexSpace { cell, code: PositionCode::new(10).unwrap() };
        let v = x.encode(&space);
        assert_eq!(v, x.root_block_start() - 1, "last regular value");
        assert_eq!(x.decode(v), Some(space));
    }

    #[test]
    fn lexicographic_order_matches_value_order() {
        // §IV-C: "the lexicographical order of quadrant sequences and
        // position codes corresponds to the less-equal order of index
        // values". DFS order = (sequence, code) lexicographic order where a
        // prefix sorts before its extensions.
        let x = xz(3);
        let mut spaces: Vec<(Vec<u8>, u8, u64)> = (0..x.root_block_start())
            .map(|v| {
                let s = x.decode(v).unwrap();
                (s.cell.sequence(), s.code.0, v)
            })
            .collect();
        let by_value = spaces.clone();
        spaces.sort_by(|a, b| {
            // Prefix-first lexicographic on sequences, then code.
            a.0.cmp(&b.0).then(a.1.cmp(&b.1))
        });
        assert_eq!(spaces, by_value);
    }
}
