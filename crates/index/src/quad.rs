//! Quad-tree cells and quadrant sequences over the unit square.
//!
//! The unit square is recursively split into four quads numbered in
//! "reversed Z" order (§IV-B, Fig. 3(a)):
//!
//! ```text
//!   2 | 3        (0 = lower-left, 1 = lower-right,
//!   --+--         2 = upper-left, 3 = upper-right)
//!   0 | 1
//! ```
//!
//! A [`Cell`] identifies one sub-square at a given resolution by its integer
//! grid coordinates; the quadrant sequence of the cell is the digit string
//! read off its coordinate bits from the top level down.

use serde::{Deserialize, Serialize};
use trass_geo::Mbr;

/// The largest supported resolution. Bounded so that XZ\* index values fit
/// in a `u64` (`4·N_is(1) = 52·4^{r-1} − 12 < 2^64` requires `r ≤ 30`).
pub const MAX_RESOLUTION: u8 = 30;

/// A quad-tree cell: the sub-square `[x·w, (x+1)·w) × [y·w, (y+1)·w)` of the
/// unit square, where `w = 2^-level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cell {
    /// Grid x coordinate, `0 .. 2^level`.
    pub x: u32,
    /// Grid y coordinate, `0 .. 2^level`.
    pub y: u32,
    /// Resolution (tree depth). Level 0 is the whole unit square.
    pub level: u8,
}

impl Cell {
    /// The root cell (the unit square).
    pub const ROOT: Cell = Cell { x: 0, y: 0, level: 0 };

    /// Creates a cell, validating coordinates against the level.
    ///
    /// # Panics
    /// Panics if `level > MAX_RESOLUTION` or a coordinate is out of range.
    pub fn new(x: u32, y: u32, level: u8) -> Self {
        assert!(level <= MAX_RESOLUTION, "level {level} exceeds MAX_RESOLUTION");
        let side = 1u32 << level;
        assert!(x < side && y < side, "cell ({x},{y}) out of range at level {level}");
        Cell { x, y, level }
    }

    /// Side length of the cell in unit-space.
    #[inline]
    pub fn width(&self) -> f64 {
        0.5f64.powi(i32::from(self.level))
    }

    /// The cell containing the unit-space point `(px, py)` at `level`.
    /// Coordinates are clamped into `[0, 1)`-cell range so `1.0` maps to the
    /// last cell.
    pub fn containing(px: f64, py: f64, level: u8) -> Self {
        assert!(level <= MAX_RESOLUTION);
        let side = 1u64 << level;
        let clamp = |v: f64| -> u32 {
            // Float → grid truncation is the intended rounding here; the
            // clamp saturates out-of-range input, and `side ≤ 2^30` keeps
            // every grid index exact in f64 and within u32.
            // trass-lint: allow(cast)
            let i = (v * side as f64).floor().max(0.0) as u64;
            u32::try_from(i.min(side - 1)).unwrap_or(u32::MAX)
        };
        Cell { x: clamp(px), y: clamp(py), level }
    }

    /// The cell's spatial extent.
    pub fn mbr(&self) -> Mbr {
        let w = self.width();
        let x0 = f64::from(self.x) * w;
        let y0 = f64::from(self.y) * w;
        Mbr::new(x0, y0, x0 + w, y0 + w)
    }

    /// The *enlarged element* of the cell: width and height doubled toward
    /// the upper-right (§IV-B), possibly extending past the unit square.
    pub fn enlarged(&self) -> Mbr {
        let w = self.width();
        let x0 = f64::from(self.x) * w;
        let y0 = f64::from(self.y) * w;
        Mbr::new(x0, y0, x0 + 2.0 * w, y0 + 2.0 * w)
    }

    /// The quadrant digit (0–3) of this cell within its parent.
    #[inline]
    pub fn quadrant(&self) -> u8 {
        debug_assert!(self.level > 0, "root has no quadrant");
        (u8::from(self.y & 1 != 0) << 1) | u8::from(self.x & 1 != 0)
    }

    /// Parent cell, or `None` for the root.
    pub fn parent(&self) -> Option<Cell> {
        if self.level == 0 {
            return None;
        }
        Some(Cell { x: self.x >> 1, y: self.y >> 1, level: self.level - 1 })
    }

    /// The four children, in quadrant order 0–3.
    ///
    /// # Panics
    /// Panics if already at [`MAX_RESOLUTION`].
    pub fn children(&self) -> [Cell; 4] {
        assert!(self.level < MAX_RESOLUTION, "cannot split beyond MAX_RESOLUTION");
        let (x, y, l) = (self.x << 1, self.y << 1, self.level + 1);
        [
            Cell { x, y, level: l },
            Cell { x: x + 1, y, level: l },
            Cell { x, y: y + 1, level: l },
            Cell { x: x + 1, y: y + 1, level: l },
        ]
    }

    /// Child in the given quadrant (0–3).
    pub fn child(&self, quadrant: u8) -> Cell {
        debug_assert!(quadrant < 4);
        self.children()[usize::from(quadrant)]
    }

    /// The quadrant sequence (digit string) identifying this cell from the
    /// root, most significant first. The root yields an empty sequence.
    pub fn sequence(&self) -> Vec<u8> {
        let mut seq = Vec::with_capacity(usize::from(self.level));
        for depth in (0..self.level).rev() {
            let xbit = (self.x >> depth) & 1 != 0;
            let ybit = (self.y >> depth) & 1 != 0;
            seq.push((u8::from(ybit) << 1) | u8::from(xbit));
        }
        seq
    }

    /// Reconstructs a cell from its quadrant sequence.
    ///
    /// # Panics
    /// Panics on digits outside 0–3 or sequences longer than
    /// [`MAX_RESOLUTION`].
    pub fn from_sequence(seq: &[u8]) -> Cell {
        assert!(seq.len() <= usize::from(MAX_RESOLUTION), "sequence too long");
        let mut x = 0u32;
        let mut y = 0u32;
        for &d in seq {
            assert!(d < 4, "invalid quadrant digit {d}");
            x = (x << 1) | u32::from(d & 1);
            y = (y << 1) | u32::from((d >> 1) & 1);
        }
        Cell { x, y, level: u8::try_from(seq.len()).unwrap_or(MAX_RESOLUTION) }
    }

    /// Convenience: the sequence rendered as a string like `"031"`.
    pub fn sequence_string(&self) -> String {
        self.sequence().iter().map(|d| char::from(b'0' + d)).collect()
    }
}

/// Lemmas 1–2 (shared by XZ-Ordering and XZ\*): the quadrant-sequence
/// length for an MBR in unit space under a maximum resolution `g`.
///
/// `l1 = ⌊log₀.₅ max(w, h)⌋`; use `l1 + 1` iff the enlarged element at that
/// resolution, anchored at the cell containing the MBR's lower-left corner,
/// still covers the MBR. Degenerate (point) MBRs land at `g`.
pub fn sequence_length(mbr: &Mbr, g: u8) -> u8 {
    let max_dim = mbr.width().max(mbr.height());
    if max_dim <= 0.0 {
        return g;
    }
    let l1 = (max_dim.ln() / 0.5f64.ln()).floor();
    if l1 >= f64::from(g) {
        return g;
    }
    if l1 < 0.0 {
        return 0;
    }
    // In range [0, g) by the guards above, so the truncation is exact.
    // trass-lint: allow(cast)
    let l1 = l1 as u8;
    let w2 = 0.5f64.powi(i32::from(l1) + 1);
    let fits = |min: f64, max: f64| max <= (min / w2).floor() * w2 + 2.0 * w2;
    if fits(mbr.min_x, mbr.max_x) && fits(mbr.min_y, mbr.max_y) {
        (l1 + 1).min(g)
    } else {
        l1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trass_geo::Point;

    #[test]
    fn root_cell_covers_unit_square() {
        assert_eq!(Cell::ROOT.mbr(), Mbr::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(Cell::ROOT.enlarged(), Mbr::new(0.0, 0.0, 2.0, 2.0));
        assert!(Cell::ROOT.sequence().is_empty());
    }

    #[test]
    fn reversed_z_quadrant_order() {
        let kids = Cell::ROOT.children();
        // 0 = lower-left, 1 = lower-right, 2 = upper-left, 3 = upper-right.
        assert!(kids[0].mbr().contains_point(&Point::new(0.25, 0.25)));
        assert!(kids[1].mbr().contains_point(&Point::new(0.75, 0.25)));
        assert!(kids[2].mbr().contains_point(&Point::new(0.25, 0.75)));
        assert!(kids[3].mbr().contains_point(&Point::new(0.75, 0.75)));
        for (q, k) in kids.iter().enumerate() {
            assert_eq!(k.quadrant(), q as u8);
            assert_eq!(k.parent().unwrap(), Cell::ROOT);
        }
    }

    #[test]
    fn sequence_roundtrip() {
        let c = Cell::new(5, 6, 3);
        let seq = c.sequence();
        assert_eq!(Cell::from_sequence(&seq), c);
        // x=5=0b101, y=6=0b110 → digits (y,x) from msb: (1,1)=3,(1,0)=2,(0,1)=1
        assert_eq!(seq, vec![3, 2, 1]);
        assert_eq!(c.sequence_string(), "321");
    }

    #[test]
    fn paper_figure_sequences() {
        // Fig. 3(b): '00' is the lower-left cell at level 2; '30' the
        // lower-left child of the upper-right quad.
        let c00 = Cell::from_sequence(&[0, 0]);
        assert_eq!((c00.x, c00.y, c00.level), (0, 0, 2));
        let c30 = Cell::from_sequence(&[3, 0]);
        assert!(c30.mbr().contains_point(&Point::new(0.55, 0.55)));
        let c311 = Cell::from_sequence(&[3, 1, 1]);
        assert_eq!(c311.level, 3);
        assert!(c311.width() < c30.width());
    }

    #[test]
    fn containing_point_lookup() {
        let c = Cell::containing(0.3, 0.7, 1);
        assert_eq!((c.x, c.y), (0, 1)); // upper-left quad
        assert_eq!(c.quadrant(), 2);
        // Boundary 1.0 clamps to the last cell.
        let c = Cell::containing(1.0, 1.0, 4);
        assert_eq!((c.x, c.y), (15, 15));
        // Negative (out-of-extent noise) clamps to zero.
        let c = Cell::containing(-0.1, 0.5, 2);
        assert_eq!(c.x, 0);
    }

    #[test]
    fn enlarged_doubles_toward_upper_right() {
        let c = Cell::new(1, 1, 2); // cell [0.25,0.5) x [0.25,0.5)
        let e = c.enlarged();
        assert_eq!(e, Mbr::new(0.25, 0.25, 0.75, 0.75));
        // It contains the cell itself in its lower-left quarter.
        assert!(e.contains(&c.mbr()));
    }

    #[test]
    fn children_partition_parent() {
        let c = Cell::new(2, 3, 3);
        let kids = c.children();
        let area: f64 = kids.iter().map(|k| k.mbr().area()).sum();
        assert!((area - c.mbr().area()).abs() < 1e-15);
        for k in &kids {
            assert!(c.mbr().contains(&k.mbr()));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_cell_rejected() {
        Cell::new(4, 0, 2);
    }
}
