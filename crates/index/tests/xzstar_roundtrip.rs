//! Property-style round-trip tests for the XZ\* encoding.
//!
//! Deliberately dependency-free (a splitmix64 generator instead of
//! proptest) so the suite exercises thousands of random index spaces even
//! in minimal build environments. Covers the two invariants the encoding
//! must never lose:
//!
//! 1. **Bijectivity** — `decode(encode(s)) == s` for every valid space,
//!    including the root block and position code 10 at max resolution.
//! 2. **Order preservation** — numeric value order equals the
//!    lexicographic order of the big-endian rowkey bytes, and every
//!    descendant space encodes inside its ancestor's `subtree_range`
//!    (the property that lets queries scan contiguous ranges).

use trass_index::quad::{Cell, MAX_RESOLUTION};
use trass_index::xzstar::{IndexSpace, PositionCode, XzStar};

/// splitmix64: deterministic, no dependencies, good enough dispersion.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A uniformly random valid index space for an index of resolution
/// `max_r`: random quadrant sequence of random length (0 = the root
/// block), random position code (10 allowed only at max resolution).
fn random_space(rng: &mut Rng, max_r: u8) -> IndexSpace {
    let level = rng.below(u64::from(max_r) + 1) as u8;
    let seq: Vec<u8> = (0..level).map(|_| (rng.next() & 3) as u8).collect();
    let cell = Cell::from_sequence(&seq);
    let max_code = if level == max_r { 10 } else { 9 };
    let code = PositionCode::new(rng.below(max_code) as u8 + 1).expect("code in 1..=10");
    IndexSpace { cell, code }
}

#[test]
fn encode_decode_roundtrip_random_spaces() {
    for max_r in [1, 4, 16, MAX_RESOLUTION] {
        let index = XzStar::new(max_r);
        let mut rng = Rng(0xA11C_E5ED ^ u64::from(max_r));
        for _ in 0..2000 {
            let space = random_space(&mut rng, max_r);
            let value = index.encode(&space);
            assert!(value < index.total_values(), "value {value} out of range (max_r={max_r})");
            assert_eq!(
                index.decode(value),
                Some(space),
                "round trip failed for {space:?} at max_r={max_r}"
            );
        }
    }
}

#[test]
fn encoded_values_are_distinct() {
    // Bijectivity also means injectivity: distinct spaces never collide.
    let index = XzStar::new(8);
    let mut rng = Rng(0xD157_1AC7);
    let mut seen = std::collections::HashMap::new();
    for _ in 0..4000 {
        let space = random_space(&mut rng, 8);
        let value = index.encode(&space);
        if let Some(prev) = seen.insert(value, space) {
            assert_eq!(prev, space, "distinct spaces {prev:?} and {space:?} collided at {value}");
        }
    }
}

#[test]
fn value_order_matches_rowkey_byte_order() {
    // The schema stores values as big-endian bytes inside the rowkey; the
    // contiguous-scan property requires numeric order == byte order.
    let index = XzStar::new(16);
    let mut rng = Rng(0x0B5E_55ED);
    for _ in 0..2000 {
        let a = index.encode(&random_space(&mut rng, 16));
        let b = index.encode(&random_space(&mut rng, 16));
        assert_eq!(a.cmp(&b), a.to_be_bytes().cmp(&b.to_be_bytes()), "{a} vs {b}");
    }
}

#[test]
fn subtree_ranges_cover_descendant_spaces() {
    let max_r = 12;
    let index = XzStar::new(max_r);
    let mut rng = Rng(0x5077_BEEF);
    for _ in 0..500 {
        // A random ancestor cell, strictly above max resolution.
        let anc_level = rng.below(u64::from(max_r)) as u8;
        let seq: Vec<u8> = (0..anc_level).map(|_| (rng.next() & 3) as u8).collect();
        let ancestor = Cell::from_sequence(&seq);
        let (start, end) = index.subtree_range(&ancestor);
        assert!(start <= end, "empty subtree range for {ancestor:?}");
        // Extend the sequence to a random descendant and check containment.
        let extra = rng.below(u64::from(max_r - anc_level) + 1) as u8;
        let mut desc_seq = seq.clone();
        desc_seq.extend((0..extra).map(|_| (rng.next() & 3) as u8));
        let descendant = Cell::from_sequence(&desc_seq);
        let max_code = if descendant.level == max_r { 10 } else { 9 };
        let code = PositionCode::new(rng.below(max_code) as u8 + 1).expect("valid code");
        let value = index.encode(&IndexSpace { cell: descendant, code });
        assert!(
            (start..=end).contains(&value),
            "descendant {descendant:?} value {value} outside [{start}, {end}] of {ancestor:?}"
        );
    }
}

#[test]
fn sibling_subtree_ranges_are_disjoint_and_ordered() {
    let index = XzStar::new(10);
    let mut rng = Rng(0xD157_0147);
    for _ in 0..200 {
        let level = rng.below(10) as u8;
        let seq: Vec<u8> = (0..level).map(|_| (rng.next() & 3) as u8).collect();
        let parent = Cell::from_sequence(&seq);
        let mut prev_end: Option<u64> = None;
        for child in parent.children() {
            let (start, end) = index.subtree_range(&child);
            if let Some(pe) = prev_end {
                assert!(start > pe, "child ranges overlap: {start} <= {pe}");
            }
            prev_end = Some(end);
        }
    }
}

// --- max-resolution boundary cases (the cast-safety hot spots) ---

#[test]
fn containing_clamps_at_unit_square_boundary() {
    // At level 30 the grid is 2^30 cells wide; coordinates at or past 1.0
    // must clamp to the last cell instead of overflowing the u32 indices.
    let side = (1u64 << 30) - 1;
    for level in [1, 16, MAX_RESOLUTION] {
        let last = (1u32 << level) - 1;
        let c = Cell::containing(1.0, 1.0, level);
        assert_eq!((c.x, c.y, c.level), (last, last, level));
        let c = Cell::containing(2.5, 100.0, level);
        assert_eq!((c.x, c.y), (last, last), "overshoot must clamp at level {level}");
        let c = Cell::containing(-0.25, -1e9, level);
        assert_eq!((c.x, c.y), (0, 0), "undershoot must clamp at level {level}");
    }
    let c = Cell::containing(1.0 - 1e-12, 1.0 - 1e-12, MAX_RESOLUTION);
    assert_eq!((u64::from(c.x), u64::from(c.y)), (side, side));
}

#[test]
fn sequence_roundtrip_at_max_resolution() {
    // The deepest corner cells: all-zero and all-three sequences of
    // length 30 exercise every bit of the u32 coordinates.
    let zeros = vec![0u8; usize::from(MAX_RESOLUTION)];
    let c = Cell::from_sequence(&zeros);
    assert_eq!((c.x, c.y, c.level), (0, 0, MAX_RESOLUTION));
    assert_eq!(c.sequence(), zeros);

    let threes = vec![3u8; usize::from(MAX_RESOLUTION)];
    let c = Cell::from_sequence(&threes);
    let last = (1u32 << 30) - 1;
    assert_eq!((c.x, c.y, c.level), (last, last, MAX_RESOLUTION));
    assert_eq!(c.sequence(), threes);
}

#[test]
fn deepest_cells_encode_with_code_ten() {
    // Position code 10 ("all four quads") exists only at max resolution;
    // the deepest corner cells at the 30-level bound must round-trip it.
    let index = XzStar::new(MAX_RESOLUTION);
    let code = PositionCode::new(10).expect("code 10 valid at max resolution");
    for seq_digit in 0u8..4 {
        let seq = vec![seq_digit; usize::from(MAX_RESOLUTION)];
        let cell = Cell::from_sequence(&seq);
        let space = IndexSpace { cell, code };
        let value = index.encode(&space);
        assert!(value < index.total_values());
        assert_eq!(index.decode(value), Some(space));
    }
}

#[test]
fn total_values_matches_exhaustive_count_at_small_resolution() {
    // Exhaustively enumerate every valid space at max_r = 3 and check the
    // encoding is a bijection onto 0..total_values().
    let max_r = 3u8;
    let index = XzStar::new(max_r);
    let mut values = Vec::new();
    let mut stack = vec![Cell::ROOT];
    while let Some(cell) = stack.pop() {
        let max_code = if cell.level == max_r { 10 } else { 9 };
        for code in 1..=max_code {
            let code = PositionCode::new(code).expect("valid code");
            values.push(index.encode(&IndexSpace { cell, code }));
        }
        if cell.level < max_r {
            stack.extend(cell.children());
        }
    }
    values.sort_unstable();
    let expected: Vec<u64> = (0..index.total_values()).collect();
    assert_eq!(values, expected, "encoding is not onto 0..total_values()");
}
