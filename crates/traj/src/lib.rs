//! Trajectory data model for TraSS.
//!
//! This crate provides everything TraSS needs to *talk about* trajectories,
//! independent of storage and indexing:
//!
//! * [`Trajectory`] — an identified sequence of 2-D points (§II, Def. 1).
//! * [`measures`] — the similarity measures the paper supports: discrete
//!   Fréchet (default, §II Def. 2), Hausdorff (§VII Def. 12) and DTW
//!   (§VII Def. 13), each with an exact kernel and a threshold-aware
//!   early-abandoning decision kernel used by the refinement step.
//! * [`bounds`] — REPOSE-style lower-bound envelopes (endpoint, MBR gap,
//!   reference-point interval gap) that let refinement discard candidates
//!   in O(n) before paying an exact O(n·m) kernel.
//! * [`dp`] — Douglas-Peucker representative points and the oriented
//!   bounding boxes between them (§IV-D "DP features"), the inputs to local
//!   filtering (Lemmas 13–14).
//! * [`generator`] — reproducible synthetic workloads standing in for the
//!   paper's T-Drive and JD-Lorry datasets (see DESIGN.md for the
//!   substitution rationale).
//! * [`codec`] — a compact binary encoding of point sequences and DP
//!   features, used as the value format in the key-value store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod codec;
pub mod dp;
pub mod generator;
pub mod io;
pub mod measures;
mod trajectory;

pub use dp::DpFeatures;
pub use measures::Measure;
pub use trajectory::{Trajectory, TrajectoryId};
