//! Douglas-Peucker features (§IV-D).
//!
//! TraSS pre-computes, for every stored trajectory, a small set of
//! *representative points* chosen by the Douglas-Peucker line-simplification
//! algorithm plus one *oriented bounding box* per gap between consecutive
//! representative points. The boxes cover every raw point, so distances to
//! the feature set lower-bound distances to the trajectory — the soundness
//! basis of local filtering (Lemmas 13–14).

use crate::Trajectory;
use serde::{Deserialize, Serialize};
use trass_geo::{Mbr, OrientedBox, Point, Segment};

/// Representative points and covering boxes of one trajectory.
///
/// Invariants (checked by `debug_assert` and property tests):
/// * `rep_indices` is strictly increasing, starts at 0, ends at `n-1`;
/// * `boxes.len() == rep_indices.len() - 1`;
/// * box `i` covers every raw point in `rep_indices[i] ..= rep_indices[i+1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpFeatures {
    /// Indices of the representative points within the raw point sequence
    /// (the `dp-points` column of Table I).
    pub rep_indices: Vec<u32>,
    /// The representative points themselves (denormalized for fast access).
    pub rep_points: Vec<Point>,
    /// Oriented covering boxes between consecutive representative points
    /// (the `dp-mbrs` column of Table I).
    pub boxes: Vec<OrientedBox>,
}

impl DpFeatures {
    /// Extracts DP features from a trajectory with simplification tolerance
    /// `theta` (the paper's "predefined distance", default 0.01 in §VI).
    pub fn extract(traj: &Trajectory, theta: f64) -> Self {
        let points = traj.points();
        let rep_indices = douglas_peucker(points, theta);
        Self::from_rep_indices(points, rep_indices)
    }

    /// Builds features from an explicit set of representative indices.
    fn from_rep_indices(points: &[Point], rep_indices: Vec<u32>) -> Self {
        debug_assert!(!rep_indices.is_empty());
        debug_assert!(rep_indices.windows(2).all(|w| w[0] < w[1]));
        let rep_points: Vec<Point> = rep_indices.iter().map(|&i| points[i as usize]).collect();
        let mut boxes = Vec::with_capacity(rep_indices.len().saturating_sub(1));
        for w in rep_indices.windows(2) {
            let (s, e) = (w[0] as usize, w[1] as usize);
            let covered = &points[s..=e];
            let b = OrientedBox::from_points_along(points[s], points[e], covered)
                .expect("non-empty slice");
            boxes.push(b);
        }
        DpFeatures { rep_indices, rep_points, boxes }
    }

    /// Number of representative points.
    #[inline]
    pub fn len(&self) -> usize {
        self.rep_points.len()
    }

    /// True when there are no representative points (never happens for
    /// features extracted from a valid trajectory).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rep_points.is_empty()
    }

    /// Minimum distance from `p` to the covering-box union; for a
    /// single-point trajectory (no boxes) this is the distance to that point.
    ///
    /// Because the boxes cover every raw point, this value lower-bounds
    /// `min_{t ∈ T} d(p, t)` — the quantity Lemma 5 needs.
    pub fn min_distance_from_point(&self, p: &Point) -> f64 {
        if self.boxes.is_empty() {
            return self.rep_points[0].distance(p);
        }
        self.boxes.iter().map(|b| b.distance_to_point(p)).fold(f64::INFINITY, f64::min)
    }

    /// Minimum distance from a segment to the covering-box union.
    pub fn min_distance_from_segment(&self, seg: &Segment) -> f64 {
        if self.boxes.is_empty() {
            return seg.distance_to_point(&self.rep_points[0]);
        }
        self.boxes.iter().map(|b| b.distance_to_segment(seg)).fold(f64::INFINITY, f64::min)
    }

    /// Lemma 13 test: returns `false` when some representative point of
    /// `self` is farther than `eps` from `other`'s box union (which proves
    /// `f(self, other) > eps`).
    pub fn rep_points_within(&self, other: &DpFeatures, eps: f64) -> bool {
        self.rep_points.iter().all(|p| other.min_distance_from_point(p) <= eps)
    }

    /// Lemma 14 test: for each covering box of `self`, every edge of the box
    /// contains at least one raw trajectory point (oriented-MBR tightness),
    /// so `max_edge min_dist(edge, other.B) ≤ ε` is necessary for
    /// similarity. Returns `false` when violated.
    pub fn boxes_within(&self, other: &DpFeatures, eps: f64) -> bool {
        self.boxes.iter().all(|b| {
            b.edges().iter().map(|e| other.min_distance_from_segment(e)).fold(0.0f64, f64::max)
                <= eps
        })
    }

    /// The axis-aligned MBR of the feature set (covers the raw trajectory).
    pub fn mbr(&self) -> Mbr {
        let mut mbr = Mbr::from_point(self.rep_points[0]);
        for b in &self.boxes {
            let bm = b.to_mbr();
            mbr = mbr.union(&bm);
        }
        for p in &self.rep_points {
            mbr.extend(*p);
        }
        mbr
    }
}

/// Runs Douglas-Peucker on `points` with tolerance `theta`, returning the
/// kept indices (always including the first and last point).
///
/// Iterative (explicit stack) to avoid recursion depth limits on long GPS
/// traces.
pub fn douglas_peucker(points: &[Point], theta: f64) -> Vec<u32> {
    assert!(!points.is_empty(), "Douglas-Peucker on empty point set");
    assert!(theta >= 0.0, "negative DP tolerance");
    let n = points.len();
    if n == 1 {
        return vec![0];
    }
    if n == 2 {
        return vec![0, 1];
    }
    let mut keep = vec![false; n];
    keep[0] = true;
    keep[n - 1] = true;
    let mut stack = vec![(0usize, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let chord = Segment::new(points[lo], points[hi]);
        let mut best = 0.0f64;
        let mut best_idx = lo;
        for (i, p) in points.iter().enumerate().take(hi).skip(lo + 1) {
            let d = chord.line_distance_to_point(p);
            if d > best {
                best = d;
                best_idx = i;
            }
        }
        if best > theta {
            keep[best_idx] = true;
            stack.push((lo, best_idx));
            stack.push((best_idx, hi));
        }
    }
    keep.iter().enumerate().filter_map(|(i, &k)| k.then_some(i as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(0, pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let pts: Vec<Point> = (0..100).map(|i| Point::new(i as f64, 0.0)).collect();
        let kept = douglas_peucker(&pts, 0.001);
        assert_eq!(kept, vec![0, 99]);
    }

    #[test]
    fn zigzag_keeps_extrema() {
        // W shape: every interior point deviates from every chord that can
        // arise during the recursion by more than the tolerance.
        let t = traj(&[(0.0, 0.0), (1.0, 5.0), (2.0, -5.0), (3.0, 5.0), (4.0, 0.0)]);
        let kept = douglas_peucker(t.points(), 1.0);
        assert_eq!(kept, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn large_tolerance_keeps_only_endpoints() {
        let t = traj(&[(0.0, 0.0), (1.0, 0.4), (2.0, -0.3), (3.0, 0.2), (4.0, 0.0)]);
        let kept = douglas_peucker(t.points(), 10.0);
        assert_eq!(kept, vec![0, 4]);
    }

    #[test]
    fn single_and_two_point_inputs() {
        assert_eq!(douglas_peucker(&[Point::new(0.0, 0.0)], 0.1), vec![0]);
        assert_eq!(douglas_peucker(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)], 0.1), vec![0, 1]);
    }

    #[test]
    fn features_cover_all_raw_points() {
        let t = traj(&[
            (0.0, 0.0),
            (1.0, 0.2),
            (2.0, -0.1),
            (3.0, 0.5),
            (4.0, 2.0),
            (5.0, 2.2),
            (6.0, 1.8),
            (7.0, 0.0),
        ]);
        let f = DpFeatures::extract(&t, 0.3);
        assert_eq!(f.boxes.len(), f.rep_indices.len() - 1);
        for p in t.points() {
            assert!(f.min_distance_from_point(p) < 1e-9, "point {p} not covered by boxes");
        }
    }

    #[test]
    fn paper_example_four_points_three_boxes() {
        // Figure 5: a winding 200-point trajectory reduced to 4 rep points
        // and 3 boxes. We synthesize an analogous 3-bend shape.
        let mut pts = Vec::new();
        for i in 0..=50 {
            pts.push((i as f64 / 50.0, (i as f64 / 50.0) * 2.0)); // up-right
        }
        for i in 1..=50 {
            pts.push((1.0 + i as f64 / 50.0, 2.0 - (i as f64 / 50.0) * 2.0)); // down-right
        }
        for i in 1..=50 {
            pts.push((2.0 + i as f64 / 50.0, (i as f64 / 50.0) * 2.0)); // up-right
        }
        let t = traj(&pts);
        let f = DpFeatures::extract(&t, 0.05);
        assert_eq!(f.rep_points.len(), 4, "indices: {:?}", f.rep_indices);
        assert_eq!(f.boxes.len(), 3);
    }

    #[test]
    fn single_point_trajectory_features() {
        let t = traj(&[(5.0, 5.0)]);
        let f = DpFeatures::extract(&t, 0.01);
        assert_eq!(f.rep_points.len(), 1);
        assert!(f.boxes.is_empty());
        assert_eq!(f.min_distance_from_point(&Point::new(5.0, 9.0)), 4.0);
    }

    #[test]
    fn lemma13_separates_far_trajectories() {
        let a = DpFeatures::extract(&traj(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]), 0.01);
        let b = DpFeatures::extract(&traj(&[(0.0, 10.0), (1.0, 10.0), (2.0, 10.0)]), 0.01);
        assert!(!a.rep_points_within(&b, 1.0));
        assert!(a.rep_points_within(&b, 10.5));
    }

    #[test]
    fn lemma14_separates_far_trajectories() {
        let a = DpFeatures::extract(&traj(&[(0.0, 0.0), (1.0, 0.3), (2.0, 0.0)]), 0.01);
        let b = DpFeatures::extract(&traj(&[(0.0, 5.0), (1.0, 5.3), (2.0, 5.0)]), 0.01);
        assert!(!a.boxes_within(&b, 1.0));
        assert!(a.boxes_within(&b, 6.0));
    }

    #[test]
    fn lemma_13_14_never_reject_similar_trajectories() {
        // Soundness: identical trajectories must always pass.
        let t = traj(&[(0.0, 0.0), (1.0, 0.7), (2.0, -0.3), (3.0, 0.4), (4.0, 0.0)]);
        let f = DpFeatures::extract(&t, 0.2);
        assert!(f.rep_points_within(&f, 0.0 + 1e-9));
        assert!(f.boxes_within(&f, 0.0 + 1e-9));
    }

    #[test]
    fn feature_mbr_covers_trajectory_mbr() {
        let t = traj(&[(0.0, 0.0), (1.0, 3.0), (2.0, -2.0), (3.0, 0.4)]);
        let f = DpFeatures::extract(&t, 0.5);
        assert!(f.mbr().extended(1e-9).contains(&t.mbr()));
    }

    #[test]
    fn smaller_theta_keeps_more_points() {
        let pts: Vec<(f64, f64)> =
            (0..200).map(|i| (i as f64, ((i as f64) * 0.3).sin() * 2.0)).collect();
        let t = traj(&pts);
        let coarse = DpFeatures::extract(&t, 1.0);
        let fine = DpFeatures::extract(&t, 0.1);
        assert!(fine.len() > coarse.len());
        assert!(coarse.len() >= 2);
    }
}
