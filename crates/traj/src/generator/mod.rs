//! Synthetic workload generators.
//!
//! The paper evaluates on T-Drive (Beijing taxis) and JD-Lorry (China-wide
//! logistics), neither of which is redistributable. These generators produce
//! datasets with the statistical signatures the evaluation depends on (see
//! DESIGN.md § datasets):
//!
//! * [`tdrive_like`] — city-scale taxi trips: random walks with heading
//!   persistence inside the Beijing bounding box, heavy-tailed trip extents
//!   (driving ranges ~0.5 km – 78 km ⇒ XZ\* resolutions ~10–16, Fig. 12(a)),
//!   plus a population of "waiting taxi" stay trajectories that land at the
//!   maximum resolution (the Fig. 12(a) peak).
//! * [`lorry_like`] — country-scale logistics routes between city hubs:
//!   long, thin trajectories spanning large extents.
//! * [`scale_dataset`] — `×t` replication with spatial jitter (the paper's
//!   five synthetic scalability datasets, §VI datasets (3)).
//!
//! All generators are deterministic given a seed.

mod walk;

pub use walk::{random_walk, stay_trajectory};

use crate::Trajectory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use trass_geo::{Mbr, Point};

/// Bounding box of urban Beijing, the T-Drive extent.
pub const BEIJING: Mbr = Mbr { min_x: 116.0, min_y: 39.6, max_x: 116.8, max_y: 40.2 };

/// Bounding box of mainland China, the Lorry extent.
pub const CHINA: Mbr = Mbr { min_x: 73.5, min_y: 18.0, max_x: 134.8, max_y: 53.5 };

/// Configuration of a T-Drive-like taxi workload.
#[derive(Debug, Clone)]
pub struct TaxiConfig {
    /// Spatial extent of the fleet.
    pub extent: Mbr,
    /// Fraction of trajectories that are stationary "waiting taxi" traces.
    pub stay_fraction: f64,
    /// Log-normal parameters (mu, sigma) of the trip extent in degrees.
    pub span_lognormal: (f64, f64),
    /// Minimum and maximum points per trajectory.
    pub points_range: (usize, usize),
}

impl Default for TaxiConfig {
    fn default() -> Self {
        TaxiConfig {
            extent: BEIJING,
            stay_fraction: 0.12,
            // median span ≈ e^-3.7 ≈ 0.025° (~2.5 km), long tail to ~0.8°.
            span_lognormal: (-3.7, 1.1),
            points_range: (20, 400),
        }
    }
}

/// Generates `n` T-Drive-like taxi trajectories.
pub fn tdrive_like(seed: u64, n: usize) -> Vec<Trajectory> {
    taxi_dataset(seed, n, &TaxiConfig::default())
}

/// Generates `n` taxi trajectories under an explicit configuration.
pub fn taxi_dataset(seed: u64, n: usize, cfg: &TaxiConfig) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed);
    let span_dist = LogNormal::new(cfg.span_lognormal.0, cfg.span_lognormal.1)
        .expect("valid log-normal parameters");
    let max_span = (cfg.extent.width().min(cfg.extent.height())) * 0.9;
    (0..n as u64)
        .map(|id| {
            if rng.gen_bool(cfg.stay_fraction) {
                let origin = random_point_in(&mut rng, &cfg.extent);
                let len = rng.gen_range(5..=60);
                stay_trajectory(&mut rng, id, origin, len, 1e-6)
            } else {
                let span = span_dist.sample(&mut rng).clamp(0.002, max_span);
                let len = rng.gen_range(cfg.points_range.0..=cfg.points_range.1);
                let origin = random_point_in_margin(&mut rng, &cfg.extent, span);
                random_walk(&mut rng, id, origin, span, len, &cfg.extent)
            }
        })
        .collect()
}

/// Configuration of a lorry (logistics) workload.
#[derive(Debug, Clone)]
pub struct LorryConfig {
    /// Spatial extent.
    pub extent: Mbr,
    /// Number of logistics hubs routes run between.
    pub hubs: usize,
    /// Points per trajectory range.
    pub points_range: (usize, usize),
    /// Cross-track GPS jitter in degrees.
    pub jitter: f64,
}

impl Default for LorryConfig {
    fn default() -> Self {
        LorryConfig { extent: CHINA, hubs: 32, points_range: (30, 250), jitter: 0.02 }
    }
}

/// Generates `n` lorry-like hub-to-hub trajectories.
pub fn lorry_like(seed: u64, n: usize) -> Vec<Trajectory> {
    lorry_dataset(seed, n, &LorryConfig::default())
}

/// Generates `n` lorry trajectories under an explicit configuration.
pub fn lorry_dataset(seed: u64, n: usize, cfg: &LorryConfig) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Fixed hub locations drawn once from the extent.
    let hubs: Vec<Point> = (0..cfg.hubs).map(|_| random_point_in(&mut rng, &cfg.extent)).collect();
    (0..n as u64)
        .map(|id| {
            let a = hubs[rng.gen_range(0..hubs.len())];
            let mut b = hubs[rng.gen_range(0..hubs.len())];
            // Short intra-city hops exist but most routes are inter-hub.
            if a == b {
                b = Point::new(a.x + rng.gen_range(-0.3..0.3), a.y + rng.gen_range(-0.3..0.3));
            }
            let len = rng.gen_range(cfg.points_range.0..=cfg.points_range.1);
            route_trajectory(&mut rng, id, a, b, len, cfg.jitter, &cfg.extent)
        })
        .collect()
}

/// A noisy route between two endpoints: linear interpolation plus a smooth
/// random detour and per-point GPS jitter, clamped to the extent.
fn route_trajectory(
    rng: &mut StdRng,
    id: u64,
    a: Point,
    b: Point,
    len: usize,
    jitter: f64,
    extent: &Mbr,
) -> Trajectory {
    let len = len.max(2);
    // Smooth detour: one mid-route control offset, blended by a parabola.
    let detour =
        Point::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)) * (a.distance(&b) * 0.08);
    let points = (0..len)
        .map(|i| {
            let t = i as f64 / (len - 1) as f64;
            let base = a.lerp(&b, t);
            let bend = detour * (4.0 * t * (1.0 - t));
            let noise =
                Point::new(rng.gen_range(-jitter..=jitter), rng.gen_range(-jitter..=jitter));
            clamp_to(base + bend + noise, extent)
        })
        .collect();
    Trajectory::new(id, points)
}

/// Configuration of a Gaussian-clustered workload.
#[derive(Debug, Clone)]
pub struct GaussianConfig {
    /// Spatial extent (origins are clamped into it).
    pub extent: Mbr,
    /// Standard deviation of the origin cluster as a fraction of the
    /// extent's smaller side.
    pub sigma_fraction: f64,
    /// Log-normal parameters (mu, sigma) of the trip extent in degrees.
    pub span_lognormal: (f64, f64),
    /// Minimum and maximum points per trajectory.
    pub points_range: (usize, usize),
}

impl Default for GaussianConfig {
    fn default() -> Self {
        GaussianConfig {
            extent: BEIJING,
            sigma_fraction: 0.12,
            span_lognormal: (-3.9, 0.9),
            points_range: (20, 200),
        }
    }
}

/// Generates `n` trajectories whose origins cluster under a 2-D Gaussian
/// centred on the extent — the skewed "hotspot" workload observability
/// demos and load tests use. Dense centre, sparse fringe: per-shard and
/// per-stage metrics show real variance instead of the uniform generators'
/// flat profile.
pub fn gaussian_like(seed: u64, n: usize) -> Vec<Trajectory> {
    gaussian_dataset(seed, n, &GaussianConfig::default())
}

/// Generates `n` Gaussian-clustered trajectories under an explicit
/// configuration.
pub fn gaussian_dataset(seed: u64, n: usize, cfg: &GaussianConfig) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed);
    let span_dist = LogNormal::new(cfg.span_lognormal.0, cfg.span_lognormal.1)
        .expect("valid log-normal parameters");
    let cx = (cfg.extent.min_x + cfg.extent.max_x) * 0.5;
    let cy = (cfg.extent.min_y + cfg.extent.max_y) * 0.5;
    let sigma = cfg.extent.width().min(cfg.extent.height()) * cfg.sigma_fraction;
    let origin_dist = rand_distr::Normal::new(0.0, sigma).expect("positive sigma");
    let max_span = (cfg.extent.width().min(cfg.extent.height())) * 0.9;
    (0..n as u64)
        .map(|id| {
            let origin = clamp_to(
                Point::new(cx + origin_dist.sample(&mut rng), cy + origin_dist.sample(&mut rng)),
                &cfg.extent,
            );
            let span = span_dist.sample(&mut rng).clamp(0.002, max_span);
            let len = rng.gen_range(cfg.points_range.0..=cfg.points_range.1);
            random_walk(&mut rng, id, origin, span, len, &cfg.extent)
        })
        .collect()
}

/// Replicates a dataset `t` times with spatial jitter and fresh ids — the
/// paper's synthetic scalability datasets ("copying t times of the Lorry
/// dataset").
pub fn scale_dataset(base: &[Trajectory], t: usize, seed: u64, extent: &Mbr) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(base.len() * t);
    let mut next_id: u64 = 0;
    for copy in 0..t {
        for traj in base {
            if copy == 0 {
                out.push(Trajectory::new(next_id, traj.points().to_vec()));
            } else {
                // Shift the whole trajectory slightly so copies are not
                // byte-identical (real replication has measurement noise).
                let dx = rng.gen_range(-0.01..0.01);
                let dy = rng.gen_range(-0.01..0.01);
                let points = traj
                    .points()
                    .iter()
                    .map(|p| clamp_to(Point::new(p.x + dx, p.y + dy), extent))
                    .collect();
                out.push(Trajectory::new(next_id, points));
            }
            next_id += 1;
        }
    }
    out
}

/// Samples `k` query trajectories from a dataset (the paper randomly picks
/// 400 query trajectories per dataset).
pub fn sample_queries(dataset: &[Trajectory], k: usize, seed: u64) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k).map(|_| dataset[rng.gen_range(0..dataset.len())].clone()).collect()
}

fn random_point_in(rng: &mut StdRng, extent: &Mbr) -> Point {
    Point::new(
        rng.gen_range(extent.min_x..=extent.max_x),
        rng.gen_range(extent.min_y..=extent.max_y),
    )
}

/// A random origin leaving `span` of room toward the upper-right so walks
/// are less likely to pile up against the extent boundary.
fn random_point_in_margin(rng: &mut StdRng, extent: &Mbr, span: f64) -> Point {
    let max_x = (extent.max_x - span).max(extent.min_x);
    let max_y = (extent.max_y - span).max(extent.min_y);
    Point::new(rng.gen_range(extent.min_x..=max_x), rng.gen_range(extent.min_y..=max_y))
}

pub(crate) fn clamp_to(p: Point, extent: &Mbr) -> Point {
    Point::new(p.x.clamp(extent.min_x, extent.max_x), p.y.clamp(extent.min_y, extent.max_y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdrive_like_is_deterministic() {
        let a = tdrive_like(42, 50);
        let b = tdrive_like(42, 50);
        assert_eq!(a, b);
        let c = tdrive_like(43, 50);
        assert_ne!(a, c);
    }

    #[test]
    fn tdrive_like_stays_in_extent() {
        for t in tdrive_like(7, 100) {
            assert!(BEIJING.contains(&t.mbr()), "trajectory {} escaped", t.id);
        }
    }

    #[test]
    fn tdrive_like_has_stay_trajectories() {
        let data = tdrive_like(1, 500);
        let stays = data.iter().filter(|t| t.mbr().width().max(t.mbr().height()) < 1e-4).count();
        assert!(stays > 20, "expected stay trajectories, found {stays}");
        assert!(stays < 150, "too many stays: {stays}");
    }

    #[test]
    fn tdrive_spans_are_heavy_tailed() {
        let data = tdrive_like(3, 1000);
        let spans: Vec<f64> = data.iter().map(|t| t.mbr().width().max(t.mbr().height())).collect();
        let small = spans.iter().filter(|&&s| s < 0.05).count();
        let large = spans.iter().filter(|&&s| s > 0.2).count();
        assert!(small > 400, "small = {small}");
        assert!(large > 10, "large = {large}");
    }

    #[test]
    fn lorry_like_spans_are_large() {
        let data = lorry_like(5, 200);
        for t in &data {
            assert!(CHINA.contains(&t.mbr()));
        }
        let avg_span: f64 = data.iter().map(|t| t.mbr().width().max(t.mbr().height())).sum::<f64>()
            / data.len() as f64;
        assert!(avg_span > 3.0, "avg span {avg_span} too small for lorries");
    }

    #[test]
    fn gaussian_like_clusters_around_the_centre() {
        let data = gaussian_like(42, 400);
        assert_eq!(data, gaussian_like(42, 400), "not deterministic");
        let cx = (BEIJING.min_x + BEIJING.max_x) * 0.5;
        let cy = (BEIJING.min_y + BEIJING.max_y) * 0.5;
        let half_w = BEIJING.width() * 0.25;
        let half_h = BEIJING.height() * 0.25;
        let central = data
            .iter()
            .filter(|t| {
                let p = t.points()[0];
                (p.x - cx).abs() < half_w && (p.y - cy).abs() < half_h
            })
            .count();
        // A uniform workload would put ~25% of origins in the central
        // quarter-area window; the Gaussian concentrates well over half.
        assert!(central > 200, "only {central}/400 origins are central");
        for t in &data {
            assert!(BEIJING.contains(&t.mbr()), "trajectory {} escaped", t.id);
        }
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let data = tdrive_like(9, 200);
        for (i, t) in data.iter().enumerate() {
            assert_eq!(t.id, i as u64);
        }
    }

    #[test]
    fn scale_dataset_multiplies_and_keeps_extent() {
        let base = lorry_like(2, 50);
        let scaled = scale_dataset(&base, 3, 11, &CHINA);
        assert_eq!(scaled.len(), 150);
        for t in &scaled {
            assert!(CHINA.contains(&t.mbr()));
        }
        // Ids are reassigned densely.
        for (i, t) in scaled.iter().enumerate() {
            assert_eq!(t.id, i as u64);
        }
        // Copies differ from the originals (jitter applied).
        assert_ne!(scaled[50].points(), base[0].points());
        // First copy preserves geometry exactly.
        assert_eq!(scaled[0].points(), base[0].points());
    }

    #[test]
    fn sample_queries_draws_from_dataset() {
        let data = tdrive_like(4, 100);
        let queries = sample_queries(&data, 10, 99);
        assert_eq!(queries.len(), 10);
        for q in &queries {
            assert!(data.iter().any(|t| t.points() == q.points()));
        }
    }
}
