//! Low-level trajectory shape primitives: heading-persistent random walks
//! and stationary traces.

use crate::Trajectory;
use rand::rngs::StdRng;
use rand::Rng;
use trass_geo::{Mbr, Point};

/// A heading-persistent random walk starting at `origin`, scaled so the
/// resulting trajectory's extent is approximately `span` degrees, clamped to
/// `extent`.
///
/// Taxi GPS traces turn smoothly most of the time with occasional sharp
/// turns; the walk mixes a persistent heading with bounded heading noise and
/// a small chance of a turn, which reproduces that texture well enough for
/// index-behaviour experiments.
pub fn random_walk(
    rng: &mut StdRng,
    id: u64,
    origin: Point,
    span: f64,
    len: usize,
    extent: &Mbr,
) -> Trajectory {
    let len = len.max(2);
    // Step length chosen so a straight-ish walk of `len` steps covers ~span.
    let step = span / (len as f64).sqrt().max(2.0);
    let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let mut p = origin;
    let mut points = Vec::with_capacity(len);
    points.push(p);
    // Track the walk's bounding box to keep the extent near `span`.
    let mut bbox = Mbr::from_point(p);
    for _ in 1..len {
        if rng.gen_bool(0.05) {
            // Occasional sharp turn (intersection).
            heading = rng.gen_range(0.0..std::f64::consts::TAU);
        } else {
            heading += rng.gen_range(-0.35..0.35);
        }
        let mut next = Point::new(p.x + step * heading.cos(), p.y + step * heading.sin());
        // Reflect off the span budget: if the walk would exceed the target
        // extent, turn back toward the origin.
        let mut grown = bbox;
        grown.extend(next);
        if grown.width() > span || grown.height() > span {
            heading = (origin.y - p.y).atan2(origin.x - p.x) + rng.gen_range(-0.5..0.5);
            next = Point::new(p.x + step * heading.cos(), p.y + step * heading.sin());
        }
        next = super::clamp_to(next, extent);
        bbox.extend(next);
        points.push(next);
        p = next;
    }
    Trajectory::new(id, points)
}

/// A stationary trace: `len` samples of the same location with GPS noise of
/// magnitude `noise` (degrees). These are the paper's "taxis waiting at
/// interest places" whose trajectories index at the maximum resolution.
pub fn stay_trajectory(
    rng: &mut StdRng,
    id: u64,
    origin: Point,
    len: usize,
    noise: f64,
) -> Trajectory {
    let len = len.max(1);
    let points = (0..len)
        .map(|_| {
            Point::new(
                origin.x + rng.gen_range(-noise..=noise),
                origin.y + rng.gen_range(-noise..=noise),
            )
        })
        .collect();
    Trajectory::new(id, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn walk_extent_respects_span_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let extent = Mbr::new(0.0, 0.0, 10.0, 10.0);
        for span in [0.1, 0.5, 2.0] {
            let t = random_walk(&mut rng, 0, Point::new(5.0, 5.0), span, 200, &extent);
            let m = t.mbr();
            // Reflection keeps it near the budget; allow small overshoot from
            // the post-reflection step.
            assert!(m.width() <= span * 1.3, "w {} span {span}", m.width());
            assert!(m.height() <= span * 1.3, "h {} span {span}", m.height());
        }
    }

    #[test]
    fn walk_is_clamped_to_extent() {
        let mut rng = StdRng::seed_from_u64(2);
        let extent = Mbr::new(0.0, 0.0, 1.0, 1.0);
        let t = random_walk(&mut rng, 0, Point::new(0.99, 0.99), 0.5, 500, &extent);
        assert!(extent.contains(&t.mbr()));
    }

    #[test]
    fn walk_moves() {
        let mut rng = StdRng::seed_from_u64(3);
        let extent = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let t = random_walk(&mut rng, 0, Point::new(5.0, 5.0), 1.0, 100, &extent);
        assert!(t.path_length() > 0.5);
    }

    #[test]
    fn stay_trajectory_is_tiny() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = stay_trajectory(&mut rng, 0, Point::new(1.0, 1.0), 30, 1e-6);
        assert_eq!(t.len(), 30);
        assert!(t.mbr().width() <= 2e-6);
        assert!(t.mbr().height() <= 2e-6);
    }
}
