//! The trajectory type (§II, Definition 1).

use serde::{Deserialize, Serialize};
use trass_geo::{Mbr, Point, Segment};

/// Identifier of a trajectory (`tid` in the paper's rowkey schema).
pub type TrajectoryId = u64;

/// A trajectory: an identified, ordered sequence of 2-D points.
///
/// Points are `(x = longitude, y = latitude)` in world coordinates. A valid
/// trajectory has at least one finite point; constructors enforce this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Unique identifier.
    pub id: TrajectoryId,
    points: Vec<Point>,
}

impl Trajectory {
    /// Creates a trajectory, validating that it is non-empty and finite.
    ///
    /// # Panics
    /// Panics if `points` is empty or contains a non-finite coordinate.
    /// Ingest paths that cannot guarantee clean input should use
    /// [`Trajectory::try_new`].
    pub fn new(id: TrajectoryId, points: Vec<Point>) -> Self {
        Self::try_new(id, points).expect("invalid trajectory")
    }

    /// Creates a trajectory, returning `None` when `points` is empty or
    /// contains NaN/infinite coordinates.
    pub fn try_new(id: TrajectoryId, points: Vec<Point>) -> Option<Self> {
        if points.is_empty() || points.iter().any(|p| !p.is_finite()) {
            return None;
        }
        Some(Trajectory { id, points })
    }

    /// The points of the trajectory.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false` — constructors reject empty trajectories — but
    /// provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// First point (`t_1`).
    #[inline]
    pub fn start(&self) -> Point {
        self.points[0]
    }

    /// Last point (`t_n`).
    #[inline]
    pub fn end(&self) -> Point {
        *self.points.last().expect("non-empty by construction")
    }

    /// The tight axis-aligned MBR of the trajectory.
    pub fn mbr(&self) -> Mbr {
        Mbr::from_points(self.points.iter()).expect("non-empty by construction")
    }

    /// Iterates over the line segments between consecutive points.
    ///
    /// A single-point trajectory yields no segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Total polyline length.
    pub fn path_length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Minimum Euclidean distance from `p` to the trajectory's *point set*
    /// (the paper's `d(t, T)` of Lemma 5 — point set, not polyline).
    pub fn min_distance_from_point(&self, p: &Point) -> f64 {
        self.points.iter().map(|q| q.distance_sq(p)).fold(f64::INFINITY, f64::min).sqrt()
    }

    /// Consumes the trajectory and returns its points.
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(id: u64, pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(id, pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn basic_accessors() {
        let t = traj(7, &[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]);
        assert_eq!(t.id, 7);
        assert_eq!(t.len(), 3);
        assert_eq!(t.start(), Point::new(0.0, 0.0));
        assert_eq!(t.end(), Point::new(1.0, 1.0));
        assert_eq!(t.path_length(), 2.0);
        assert_eq!(t.segments().count(), 2);
    }

    #[test]
    fn mbr_is_tight() {
        let t = traj(1, &[(2.0, -1.0), (0.0, 3.0), (1.0, 1.0)]);
        assert_eq!(t.mbr(), Mbr::new(0.0, -1.0, 2.0, 3.0));
    }

    #[test]
    fn single_point_trajectory() {
        let t = traj(1, &[(5.0, 5.0)]);
        assert_eq!(t.start(), t.end());
        assert_eq!(t.segments().count(), 0);
        assert_eq!(t.path_length(), 0.0);
        assert_eq!(t.mbr().area(), 0.0);
    }

    #[test]
    fn try_new_rejects_empty_and_nan() {
        assert!(Trajectory::try_new(1, vec![]).is_none());
        assert!(Trajectory::try_new(1, vec![Point::new(f64::NAN, 0.0)]).is_none());
        assert!(Trajectory::try_new(1, vec![Point::new(1.0, 2.0)]).is_some());
    }

    #[test]
    fn min_distance_from_point_uses_point_set() {
        // Distance to points, not segments: midpoint of a long edge is far.
        let t = traj(1, &[(0.0, 0.0), (10.0, 0.0)]);
        let d = t.min_distance_from_point(&Point::new(5.0, 1.0));
        assert!((d - (26.0f64).sqrt()).abs() < 1e-12);
    }
}
