//! Edit Distance on Real sequence (EDR).
//!
//! Counts the minimum number of edit operations (insert, delete,
//! substitute) needed to align two trajectories, where two points "match"
//! when within a tolerance `tau`. Robust to outliers, used widely in
//! trajectory analytics; another of the paper's future-work metrics.
//!
//! Like ERP, EDR is a refinement-only kernel here: it is a *count*, not a
//! geometric distance, so Lemma 5 does not apply and it cannot drive
//! TraSS's index pruning.

use trass_geo::Point;

/// Exact EDR with matching tolerance `tau`. Returns the edit count
/// (0 ..= max(n, m)).
///
/// # Panics
/// Panics if either sequence is empty or `tau` is negative.
pub fn distance(a: &[Point], b: &[Point], tau: f64) -> usize {
    assert!(!a.is_empty() && !b.is_empty(), "EDR distance of empty sequence");
    assert!(tau >= 0.0, "negative EDR tolerance");
    let (n, m) = (a.len(), b.len());
    let tau_sq = tau * tau;
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut curr = vec![0usize; m + 1];
    for i in 1..=n {
        curr[0] = i;
        for j in 1..=m {
            let subcost = usize::from(a[i - 1].distance_sq(&b[j - 1]) > tau_sq);
            curr[j] = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + subcost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Normalized EDR similarity in `[0, 1]`: `1 − edr / max(n, m)`
/// (1 = within-tolerance identical).
pub fn similarity(a: &[Point], b: &[Point], tau: f64) -> f64 {
    let edits = distance(a, b, tau) as f64;
    1.0 - edits / a.len().max(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_within_tolerance_is_zero() {
        let a = pts(&[(1.0, 1.0), (2.0, 2.0), (3.0, 1.0)]);
        let mut b = a.clone();
        for p in &mut b {
            p.x += 0.05;
        }
        assert_eq!(distance(&a, &b, 0.1), 0);
        assert_eq!(similarity(&a, &b, 0.1), 1.0);
    }

    #[test]
    fn completely_different_costs_max_len() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(100.0, 100.0), (101.0, 100.0), (102.0, 100.0)]);
        assert_eq!(distance(&a, &b, 0.5), 3);
        assert_eq!(similarity(&a, &b, 0.5), 0.0);
    }

    #[test]
    fn single_outlier_costs_one_edit() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let mut b = a.clone();
        b[1] = Point::new(1.0, 50.0); // GPS glitch
        assert_eq!(distance(&a, &b, 0.1), 1, "EDR absorbs one outlier as one edit");
    }

    #[test]
    fn insertion_costs_one() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (0.5, 5.0), (1.0, 0.0)]);
        assert_eq!(distance(&a, &b, 0.1), 1);
    }

    #[test]
    fn symmetric() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        let b = pts(&[(0.2, 0.1), (1.4, 0.9)]);
        assert_eq!(distance(&a, &b, 0.3), distance(&b, &a, 0.3));
    }

    #[test]
    fn zero_tolerance_is_strict() {
        let a = pts(&[(1.0, 1.0)]);
        let b = pts(&[(1.0, 1.0)]);
        assert_eq!(distance(&a, &b, 0.0), 0, "exact equality matches at tau = 0");
        let c = pts(&[(1.0, 1.0 + 1e-9)]);
        assert_eq!(distance(&a, &c, 0.0), 1);
    }
}
