//! Symmetric Hausdorff distance over point sets (§VII, Definition 12).

use trass_geo::Point;

/// Directed Hausdorff distance `max_{p∈a} min_{q∈b} d(p, q)`.
///
/// Uses the standard early-break trick: the inner scan stops as soon as a
/// candidate closer than the current outer maximum is found, which makes the
/// average case far cheaper than O(n·m) on real trajectories.
///
/// # Panics
/// Panics if either sequence is empty.
pub fn directed(a: &[Point], b: &[Point]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "Hausdorff distance of empty sequence");
    directed_sq(a, b, f64::INFINITY).sqrt()
}

/// The shared directed kernel in squared space: returns the squared
/// directed Hausdorff distance, or `f64::INFINITY` early once the running
/// maximum exceeds `cutoff_sq` (the maximum only grows, so the final value
/// would too). `cutoff_sq = +∞` never abandons and reproduces the exact
/// kernel bit-for-bit.
fn directed_sq(a: &[Point], b: &[Point], cutoff_sq: f64) -> f64 {
    let mut cmax_sq = 0.0f64;
    for p in a {
        let mut cmin_sq = f64::INFINITY;
        for q in b {
            let d = p.distance_sq(q);
            if d < cmax_sq {
                // This p cannot raise the max; skip the rest of b.
                cmin_sq = d;
                break;
            }
            if d < cmin_sq {
                cmin_sq = d;
            }
        }
        if cmin_sq > cmax_sq && cmin_sq.is_finite() {
            cmax_sq = cmin_sq;
        }
        if cmax_sq > cutoff_sq {
            return f64::INFINITY;
        }
    }
    cmax_sq
}

/// Symmetric Hausdorff distance `max(directed(a,b), directed(b,a))`.
pub fn distance(a: &[Point], b: &[Point]) -> f64 {
    directed(a, b).max(directed(b, a))
}

/// Single-pass exact-or-abandon kernel: `Some(distance(a, b))` —
/// bit-identical to [`distance`] — when the symmetric Hausdorff distance
/// is at most `eps`, `None` as soon as either directed pass proves it
/// exceeds `eps`.
///
/// # Panics
/// Panics if either sequence is empty.
pub fn distance_within(a: &[Point], b: &[Point], eps: f64) -> Option<f64> {
    assert!(!a.is_empty() && !b.is_empty(), "Hausdorff decision of empty sequence");
    if eps < 0.0 {
        return None;
    }
    let eps_sq = eps * eps;
    let ab_sq = directed_sq(a, b, eps_sq);
    if ab_sq > eps_sq {
        return None;
    }
    let ba_sq = directed_sq(b, a, eps_sq);
    if ba_sq > eps_sq {
        return None;
    }
    Some(ab_sq.sqrt().max(ba_sq.sqrt()))
}

/// Decides `distance(a, b) <= eps`, abandoning at the first witness point
/// with no partner within `eps`.
pub fn within(a: &[Point], b: &[Point], eps: f64) -> bool {
    if eps < 0.0 {
        return false;
    }
    let eps_sq = eps * eps;
    directed_within_sq(a, b, eps_sq) && directed_within_sq(b, a, eps_sq)
}

fn directed_within_sq(a: &[Point], b: &[Point], eps_sq: f64) -> bool {
    'outer: for p in a {
        for q in b {
            if p.distance_sq(q) <= eps_sq {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_sets_have_zero_distance() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(distance(&a, &a), 0.0);
        assert!(within(&a, &a, 0.0));
    }

    #[test]
    fn directed_is_asymmetric() {
        // b contains a's points plus a far outlier.
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (1.0, 0.0), (10.0, 0.0)]);
        assert_eq!(directed(&a, &b), 0.0);
        assert_eq!(directed(&b, &a), 9.0);
        assert_eq!(distance(&a, &b), 9.0);
    }

    #[test]
    fn parallel_lines_distance_is_offset() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 3.0), (1.0, 3.0), (2.0, 3.0)]);
        assert_eq!(distance(&a, &b), 3.0);
    }

    #[test]
    fn hausdorff_ignores_ordering() {
        // Unlike Fréchet, Hausdorff is a set distance.
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let rev = pts(&[(2.0, 0.0), (1.0, 0.0), (0.0, 0.0)]);
        assert_eq!(distance(&a, &rev), 0.0);
    }

    #[test]
    fn hausdorff_is_at_most_frechet() {
        use super::super::frechet;
        let a = pts(&[(0.0, 0.0), (1.0, 0.5), (2.0, -0.5), (3.0, 0.0)]);
        let b = pts(&[(0.3, 0.1), (1.5, -0.2), (2.5, 0.7), (3.3, 0.2)]);
        assert!(distance(&a, &b) <= frechet::distance(&a, &b) + 1e-12);
    }

    #[test]
    fn within_matches_distance() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.3), (2.0, -0.4)]);
        let b = pts(&[(0.2, 0.5), (1.4, -0.3), (2.4, 0.6), (3.8, -0.5)]);
        let d = distance(&a, &b);
        assert!(within(&a, &b, d + 1e-9));
        assert!(!within(&a, &b, d - 1e-9));
    }

    #[test]
    fn within_rejects_negative_eps() {
        let a = pts(&[(0.0, 0.0)]);
        assert!(!within(&a, &a, -0.1));
    }

    #[test]
    fn single_points() {
        let a = pts(&[(0.0, 0.0)]);
        let b = pts(&[(3.0, 4.0)]);
        assert_eq!(distance(&a, &b), 5.0);
    }

    #[test]
    fn distance_within_is_bit_identical_on_hits() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.3), (2.0, -0.4)]);
        let b = pts(&[(0.2, 0.5), (1.4, -0.3), (2.4, 0.6), (3.8, -0.5)]);
        let d = distance(&a, &b);
        let got = distance_within(&a, &b, d * 1.5).expect("within generous eps");
        assert_eq!(got.to_bits(), d.to_bits());
        assert_eq!(distance_within(&a, &b, d * 0.5), None);
        assert_eq!(distance_within(&a, &b, -1.0), None);
        for eps in [0.0, d * 0.9, d * 1.1, 100.0] {
            assert_eq!(distance_within(&a, &b, eps).is_some(), within(&a, &b, eps), "eps {eps}");
        }
    }
}
