//! Edit distance with Real Penalty (ERP).
//!
//! One of the "other metrics" the paper's conclusion leaves as future
//! work. ERP aligns two sequences allowing *gaps*, each paid at the
//! distance to a fixed gap point `g`; unlike DTW it is a true metric.
//!
//! ERP is provided as a refinement kernel only: Lemma 5 (the any-point
//! lower bound TraSS's pruning relies on) does not hold for ERP in
//! general, so it is not part of the [`super::Measure`] enum that drives
//! index pruning. Callers can still use it to re-rank candidate sets
//! produced under a pruning-safe measure.

use trass_geo::Point;

/// Exact ERP distance with gap point `g`.
///
/// # Panics
/// Panics if either sequence is empty.
pub fn distance(a: &[Point], b: &[Point], g: Point) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "ERP distance of empty sequence");
    let (n, m) = (a.len(), b.len());
    // prev[j] = erp(i-1, j); gap row/column initialisation: deleting the
    // first j points of b costs sum d(b_j, g).
    let mut prev = vec![0.0f64; m + 1];
    let mut curr = vec![0.0f64; m + 1];
    for j in 1..=m {
        prev[j] = prev[j - 1] + b[j - 1].distance(&g);
    }
    for i in 1..=n {
        curr[0] = prev[0] + a[i - 1].distance(&g);
        for j in 1..=m {
            let del_a = prev[j] + a[i - 1].distance(&g);
            let del_b = curr[j - 1] + b[j - 1].distance(&g);
            let align = prev[j - 1] + a[i - 1].distance(&b[j - 1]);
            curr[j] = del_a.min(del_b).min(align);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// ERP with the conventional gap point at the origin.
pub fn distance_origin_gap(a: &[Point], b: &[Point]) -> f64 {
    distance(a, b, Point::ORIGIN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_sequences_zero() {
        let a = pts(&[(1.0, 1.0), (2.0, 2.0), (3.0, 1.0)]);
        assert_eq!(distance(&a, &a, Point::ORIGIN), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = pts(&[(1.0, 0.0), (2.0, 1.0), (3.0, 0.0)]);
        let b = pts(&[(1.5, 0.2), (2.5, 0.8)]);
        let g = Point::new(0.0, 0.0);
        assert!((distance(&a, &b, g) - distance(&b, &a, g)).abs() < 1e-12);
    }

    #[test]
    fn gap_penalty_applies_to_unmatched_points() {
        // b = a plus one extra point far from the gap origin: aligning
        // must pay that point's distance to g.
        let a = pts(&[(1.0, 0.0)]);
        let b = pts(&[(1.0, 0.0), (5.0, 0.0)]);
        let d = distance(&a, &b, Point::ORIGIN);
        assert!((d - 5.0).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        // ERP is a metric; check the triangle inequality over a few
        // hand-built triples.
        let g = Point::ORIGIN;
        let xs = [
            pts(&[(1.0, 1.0), (2.0, 1.0)]),
            pts(&[(1.5, 1.2), (2.5, 0.8), (3.0, 1.0)]),
            pts(&[(0.5, 0.5)]),
        ];
        for a in &xs {
            for b in &xs {
                for c in &xs {
                    let ab = distance(a, b, g);
                    let bc = distance(b, c, g);
                    let ac = distance(a, c, g);
                    assert!(ac <= ab + bc + 1e-9, "triangle violated");
                }
            }
        }
    }

    #[test]
    fn origin_gap_helper() {
        let a = pts(&[(3.0, 4.0)]);
        let b = pts(&[(3.0, 4.0), (0.0, 0.0)]);
        // The extra (0,0) point is free under an origin gap.
        assert_eq!(distance_origin_gap(&a, &b), 0.0);
    }
}
