//! Trajectory similarity measures.
//!
//! TraSS adopts classic measures rather than inventing one (§II): discrete
//! Fréchet distance is the default, with Hausdorff and DTW supported through
//! the §VII extension. Each measure exposes two kernels:
//!
//! * an **exact** kernel (`distance`) used when the measure value itself is
//!   needed (e.g. ranking in top-k search), and
//! * a **decision** kernel (`within`) that answers `f(Q,T) ≤ ε` with early
//!   abandoning, used by threshold-search refinement where the exact value
//!   is irrelevant once the threshold is exceeded.
//!
//! All kernels operate on point slices so they can run against borrowed
//! storage without copying.

pub mod dtw;
pub mod edr;
pub mod erp;
pub mod frechet;
pub mod hausdorff;

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use trass_geo::Point;

/// The similarity measure used by a query (§II + §VII).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Measure {
    /// Discrete Fréchet distance (default).
    #[default]
    Frechet,
    /// Symmetric Hausdorff distance.
    Hausdorff,
    /// Dynamic Time Warping (a *sum* of distances, unlike the other two).
    Dtw,
}

impl Measure {
    /// Exact measure value between two point sequences.
    ///
    /// # Panics
    /// Panics if either sequence is empty.
    pub fn distance(&self, a: &[Point], b: &[Point]) -> f64 {
        match self {
            Measure::Frechet => frechet::distance(a, b),
            Measure::Hausdorff => hausdorff::distance(a, b),
            Measure::Dtw => dtw::distance(a, b),
        }
    }

    /// Non-panicking [`Measure::distance`]: `None` when either sequence is
    /// empty (a corrupt stored row, never a valid trajectory), the exact
    /// value otherwise. Refinement call sites use this so a bad row is
    /// skipped instead of crashing the query.
    pub fn try_distance(&self, a: &[Point], b: &[Point]) -> Option<f64> {
        if a.is_empty() || b.is_empty() {
            return None;
        }
        Some(self.distance(a, b))
    }

    /// Decides `distance(a, b) <= eps` with early abandoning.
    pub fn within(&self, a: &[Point], b: &[Point], eps: f64) -> bool {
        match self {
            Measure::Frechet => frechet::within(a, b, eps),
            Measure::Hausdorff => hausdorff::within(a, b, eps),
            Measure::Dtw => dtw::within(a, b, eps),
        }
    }

    /// Single-pass exact-or-abandon kernel: `Some(d)` with
    /// `d == distance(a, b)` **bit-for-bit** when the distance is at most
    /// `eps`, `None` as soon as the kernel proves it exceeds `eps`. The
    /// `Some`-ness agrees exactly with [`Measure::within`] at the same
    /// `eps` (both decide in the same squared/summed space), so replacing
    /// a `within` + `distance` pair with one `distance_within` call can
    /// never change query results — only skip the second O(n·m) pass.
    ///
    /// # Panics
    /// Panics if either sequence is empty.
    pub fn distance_within(&self, a: &[Point], b: &[Point], eps: f64) -> Option<f64> {
        match self {
            Measure::Frechet => frechet::distance_within(a, b, eps),
            Measure::Hausdorff => hausdorff::distance_within(a, b, eps),
            Measure::Dtw => dtw::distance_within(a, b, eps),
        }
    }

    /// Whether Lemma 12 (start/end point filter) is sound for this measure.
    ///
    /// Fréchet and DTW both force the first and last points to match
    /// (`D ≥ d(q_1,t_1)` and `D ≥ d(q_n,t_m)`); Hausdorff does not (§VII-A).
    pub fn supports_endpoint_lemma(&self) -> bool {
        !matches!(self, Measure::Hausdorff)
    }

    /// Whether Lemma 5 (any-point lower bound: `∃t∈T₁, d(t,T₂) > ε ⇒
    /// f(T₁,T₂) > ε`) is sound for this measure.
    ///
    /// It holds for all three supported measures (§V-B, §VII), so global
    /// pruning and local filtering apply unchanged. Kept explicit so a
    /// future measure without the property fails safe.
    pub fn supports_point_lower_bound(&self) -> bool {
        true
    }
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Measure::Frechet => "frechet",
            Measure::Hausdorff => "hausdorff",
            Measure::Dtw => "dtw",
        };
        f.write_str(s)
    }
}

impl FromStr for Measure {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "frechet" | "fréchet" => Ok(Measure::Frechet),
            "hausdorff" => Ok(Measure::Hausdorff),
            "dtw" => Ok(Measure::Dtw),
            other => Err(format!("unknown measure: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for m in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
            assert_eq!(m.to_string().parse::<Measure>().unwrap(), m);
        }
        assert!("euclid".parse::<Measure>().is_err());
    }

    #[test]
    fn default_is_frechet() {
        assert_eq!(Measure::default(), Measure::Frechet);
    }

    #[test]
    fn endpoint_lemma_support_matches_paper() {
        assert!(Measure::Frechet.supports_endpoint_lemma());
        assert!(Measure::Dtw.supports_endpoint_lemma());
        assert!(!Measure::Hausdorff.supports_endpoint_lemma());
    }

    #[test]
    fn dispatch_agrees_with_kernels() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]);
        assert_eq!(Measure::Frechet.distance(&a, &b), frechet::distance(&a, &b));
        assert_eq!(Measure::Hausdorff.distance(&a, &b), hausdorff::distance(&a, &b));
        assert_eq!(Measure::Dtw.distance(&a, &b), dtw::distance(&a, &b));
    }

    #[test]
    fn within_consistent_with_distance() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.2), (2.0, -0.1), (3.0, 0.0)]);
        let b = pts(&[(0.1, 0.4), (1.2, 0.1), (2.2, 0.3), (3.1, -0.2)]);
        for m in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
            let d = m.distance(&a, &b);
            assert!(m.within(&a, &b, d + 1e-9), "{m} within failed at d+");
            assert!(!m.within(&a, &b, d - 1e-9), "{m} within failed at d-");
        }
    }

    #[test]
    fn try_distance_skips_empty_sequences() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.2)]);
        for m in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
            assert_eq!(m.try_distance(&a, &[]), None, "{m}");
            assert_eq!(m.try_distance(&[], &a), None, "{m}");
            assert_eq!(m.try_distance(&[], &[]), None, "{m}");
            assert_eq!(m.try_distance(&a, &a), Some(0.0), "{m}");
        }
    }

    #[test]
    fn distance_within_agrees_with_two_pass_path() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.2), (2.0, -0.1), (3.0, 0.0)]);
        let b = pts(&[(0.1, 0.4), (1.2, 0.1), (2.2, 0.3), (3.1, -0.2)]);
        for m in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
            let d = m.distance(&a, &b);
            for eps in [0.0, d * 0.5, d * 1.5, f64::INFINITY] {
                let fused = m.distance_within(&a, &b, eps);
                assert_eq!(fused.is_some(), m.within(&a, &b, eps), "{m} eps {eps}");
                if let Some(got) = fused {
                    assert_eq!(got.to_bits(), d.to_bits(), "{m} eps {eps}");
                }
            }
        }
    }
}
