//! Discrete Fréchet distance (§II, Definition 2).
//!
//! The classic "man walks dog" coupling distance over point sequences.
//! `distance` is the exact O(n·m) dynamic program with a rolling row;
//! `within` is the reachability decision version, which only needs boolean
//! state and abandons as soon as an entire row becomes unreachable.

use trass_geo::Point;

/// Exact discrete Fréchet distance between two non-empty point sequences.
///
/// # Panics
/// Panics if either sequence is empty.
pub fn distance(a: &[Point], b: &[Point]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "Fréchet distance of empty sequence");
    frechet_impl(a, b, f64::INFINITY).sqrt()
}

/// Single-pass exact-or-abandon kernel: `Some(distance(a, b))` —
/// bit-identical to [`distance`] — when the Fréchet distance is at most
/// `eps`, `None` as soon as the DP proves it exceeds `eps`.
///
/// DP values along any coupling are non-decreasing (each cell is a `max`
/// over its path prefix) and every coupling crosses every row, so a row
/// whose minimum exceeds `eps²` proves the final value does too — the
/// abandon can never fire on a true hit, and a completed run used no
/// cutoff arithmetic, so its value matches the unbounded kernel exactly.
///
/// # Panics
/// Panics if either sequence is empty.
pub fn distance_within(a: &[Point], b: &[Point], eps: f64) -> Option<f64> {
    assert!(!a.is_empty() && !b.is_empty(), "Fréchet decision of empty sequence");
    if eps < 0.0 {
        return None;
    }
    let eps_sq = eps * eps;
    // Endpoints must couple; same O(1) quick check as `within`.
    if a[0].distance_sq(&b[0]) > eps_sq || a[a.len() - 1].distance_sq(&b[b.len() - 1]) > eps_sq {
        return None;
    }
    let d_sq = frechet_impl(a, b, eps_sq);
    (d_sq <= eps_sq).then(|| d_sq.sqrt())
}

/// The shared value DP in squared space: returns the squared Fréchet
/// distance, or `f64::INFINITY` early once every cell of a row exceeds
/// `cutoff_sq`. `cutoff_sq = +∞` never abandons and reproduces the exact
/// kernel bit-for-bit (the cutoff is only ever compared, never mixed into
/// the arithmetic).
#[allow(clippy::needless_range_loop)] // symmetric a[i]/b[j] DP recurrence
fn frechet_impl(a: &[Point], b: &[Point], cutoff_sq: f64) -> f64 {
    let (n, m) = (a.len(), b.len());
    // Work in squared distances; the caller takes one sqrt at the end.
    let mut prev = vec![0.0f64; m];
    let mut curr = vec![0.0f64; m];

    prev[0] = a[0].distance_sq(&b[0]);
    for j in 1..m {
        prev[j] = prev[j - 1].max(a[0].distance_sq(&b[j]));
    }
    for i in 1..n {
        curr[0] = prev[0].max(a[i].distance_sq(&b[0]));
        let mut row_min = curr[0];
        for j in 1..m {
            let reach = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = reach.max(a[i].distance_sq(&b[j]));
            row_min = row_min.min(curr[j]);
        }
        if row_min > cutoff_sq {
            return f64::INFINITY;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m - 1]
}

/// Decides `distance(a, b) <= eps` via free-space reachability, abandoning
/// early when no cell of a row is reachable.
///
/// # Panics
/// Panics if either sequence is empty.
#[allow(clippy::needless_range_loop)] // symmetric a[i]/b[j] DP recurrence
pub fn within(a: &[Point], b: &[Point], eps: f64) -> bool {
    assert!(!a.is_empty() && !b.is_empty(), "Fréchet decision of empty sequence");
    if eps < 0.0 {
        return false;
    }
    let (n, m) = (a.len(), b.len());
    let eps_sq = eps * eps;
    // Quick necessary conditions: endpoints must couple.
    if a[0].distance_sq(&b[0]) > eps_sq || a[n - 1].distance_sq(&b[m - 1]) > eps_sq {
        return false;
    }

    let mut prev = vec![false; m];
    let mut curr = vec![false; m];
    prev[0] = true; // endpoint check above guarantees d(a0,b0) <= eps
    for j in 1..m {
        prev[j] = prev[j - 1] && a[0].distance_sq(&b[j]) <= eps_sq;
    }
    for i in 1..n {
        curr[0] = prev[0] && a[i].distance_sq(&b[0]) <= eps_sq;
        let mut any = curr[0];
        for j in 1..m {
            let reach = prev[j] || curr[j - 1] || prev[j - 1];
            curr[j] = reach && a[i].distance_sq(&b[j]) <= eps_sq;
            any |= curr[j];
        }
        if !any {
            return false;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = pts(&[(0.0, 0.0), (1.0, 2.0), (3.0, 1.0)]);
        assert_eq!(distance(&a, &a), 0.0);
        assert!(within(&a, &a, 0.0));
    }

    #[test]
    fn parallel_lines_distance_is_offset() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let b = pts(&[(0.0, 2.0), (1.0, 2.0), (2.0, 2.0), (3.0, 2.0)]);
        assert!((distance(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_vs_sequence_is_max_distance() {
        // Definition 2, case n = 1: max over all points.
        let a = pts(&[(0.0, 0.0)]);
        let b = pts(&[(1.0, 0.0), (5.0, 0.0), (2.0, 0.0)]);
        assert_eq!(distance(&a, &b), 5.0);
        assert_eq!(distance(&b, &a), 5.0);
    }

    #[test]
    fn frechet_is_symmetric() {
        let a = pts(&[(0.0, 0.0), (2.0, 1.0), (4.0, 0.5)]);
        let b = pts(&[(0.5, -1.0), (2.5, 0.0), (3.5, 2.0), (4.5, 0.0)]);
        assert_eq!(distance(&a, &b), distance(&b, &a));
    }

    #[test]
    fn frechet_exceeds_endpoint_distances() {
        // Lemma 12's basis: D_F >= d(q1, t1) and D_F >= d(qn, tm).
        let a = pts(&[(0.0, 0.0), (5.0, 5.0)]);
        let b = pts(&[(1.0, 0.0), (5.0, 7.0)]);
        let d = distance(&a, &b);
        assert!(d >= a[0].distance(&b[0]));
        assert!(d >= a[1].distance(&b[1]));
    }

    #[test]
    fn backtracking_dog_example() {
        // Classic case where Fréchet > Hausdorff: matching must be monotone.
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (4.0, 0.0)]);
        let b = pts(&[(0.0, 1.0), (4.0, 1.0), (0.0, 1.0), (4.0, 1.0)]);
        let d = distance(&a, &b);
        // Monotone coupling forces a pairing at horizontal distance >= 2.
        assert!(d > 2.0, "d = {d}");
    }

    #[test]
    fn within_matches_distance_on_grid() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.3), (2.0, -0.4), (3.0, 0.1), (4.0, 0.0)]);
        let b = pts(&[(0.2, 0.5), (1.4, -0.3), (2.4, 0.6), (3.8, -0.5)]);
        let d = distance(&a, &b);
        for scale in [0.5, 0.9, 0.999, 1.001, 1.1, 2.0] {
            let eps = d * scale;
            assert_eq!(within(&a, &b, eps), d <= eps, "scale {scale}");
        }
    }

    #[test]
    fn within_rejects_negative_eps() {
        let a = pts(&[(0.0, 0.0)]);
        assert!(!within(&a, &a, -1.0));
    }

    #[test]
    fn within_abandons_on_far_endpoints() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(100.0, 0.0), (101.0, 0.0)]);
        assert!(!within(&a, &b, 1.0));
    }

    #[test]
    fn single_point_both_sides() {
        let a = pts(&[(0.0, 0.0)]);
        let b = pts(&[(3.0, 4.0)]);
        assert_eq!(distance(&a, &b), 5.0);
        assert!(within(&a, &b, 5.0));
        assert!(!within(&a, &b, 4.999));
    }

    #[test]
    fn distance_within_is_bit_identical_on_hits() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.3), (2.0, -0.4), (3.0, 0.1), (4.0, 0.0)]);
        let b = pts(&[(0.2, 0.5), (1.4, -0.3), (2.4, 0.6), (3.8, -0.5)]);
        let d = distance(&a, &b);
        let got = distance_within(&a, &b, d * 1.5).expect("within generous eps");
        assert_eq!(got.to_bits(), d.to_bits());
        assert_eq!(distance_within(&a, &b, d * 0.5), None);
        assert_eq!(distance_within(&a, &b, -1.0), None);
    }

    #[test]
    fn distance_within_verdict_matches_within() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.3), (2.0, -0.4), (3.0, 0.1)]);
        let b = pts(&[(0.2, 0.5), (1.4, -0.3), (2.4, 0.6)]);
        let d = distance(&a, &b);
        for eps in [0.0, d * 0.9, d, d * 1.1, 10.0] {
            assert_eq!(distance_within(&a, &b, eps).is_some(), within(&a, &b, eps), "eps {eps}");
        }
    }
}
