//! Dynamic Time Warping (§VII, Definition 13).
//!
//! Unlike Fréchet and Hausdorff, DTW *sums* point distances along the
//! optimal warping path, so a threshold ε for DTW is a budget over the whole
//! alignment. Lemma 5 still holds (`D_D(Q,T) ≥ d(q, T)` for every q ∈ Q,
//! §VII-B), which is why TraSS reuses the same pruning machinery.

use trass_geo::Point;

/// Exact DTW distance between two non-empty point sequences, using
/// Euclidean point distance as the local cost.
///
/// # Panics
/// Panics if either sequence is empty.
pub fn distance(a: &[Point], b: &[Point]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "DTW distance of empty sequence");
    dtw_impl(a, b, f64::INFINITY)
}

/// Decides `distance(a, b) <= eps`, abandoning when every cell of a row
/// already exceeds `eps` (all path prefixes are over budget).
pub fn within(a: &[Point], b: &[Point], eps: f64) -> bool {
    if eps < 0.0 {
        return false;
    }
    dtw_impl(a, b, eps) <= eps
}

/// Single-pass exact-or-abandon kernel: `Some(distance(a, b))` —
/// bit-identical to [`distance`] — when the DTW cost is at most `eps`,
/// `None` once every partial path is over budget. Partial-path costs only
/// grow (local costs are non-negative), so the row-minimum abandon can
/// never fire on a true hit, and a completed run's value involved no
/// cutoff arithmetic.
///
/// # Panics
/// Panics if either sequence is empty.
pub fn distance_within(a: &[Point], b: &[Point], eps: f64) -> Option<f64> {
    assert!(!a.is_empty() && !b.is_empty(), "DTW decision of empty sequence");
    if eps < 0.0 {
        return None;
    }
    let d = dtw_impl(a, b, eps);
    (d <= eps).then_some(d)
}

/// Shared kernel: computes DTW, returning `f64::INFINITY` early when every
/// partial path already exceeds `cutoff`.
#[allow(clippy::needless_range_loop)] // symmetric a[i]/b[j] DP recurrence
fn dtw_impl(a: &[Point], b: &[Point], cutoff: f64) -> f64 {
    let (n, m) = (a.len(), b.len());
    let mut prev = vec![f64::INFINITY; m];
    let mut curr = vec![f64::INFINITY; m];

    prev[0] = a[0].distance(&b[0]);
    for j in 1..m {
        prev[j] = prev[j - 1] + a[0].distance(&b[j]);
    }
    for i in 1..n {
        curr[0] = prev[0] + a[i].distance(&b[0]);
        let mut row_min = curr[0];
        for j in 1..m {
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = best + a[i].distance(&b[j]);
            row_min = row_min.min(curr[j]);
        }
        if row_min > cutoff {
            return f64::INFINITY;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m - 1]
}

/// DTW constrained to a Sakoe-Chiba band of half-width `band` (in matrix
/// cells). `band >= max(n, m)` is equivalent to unconstrained DTW. Useful as
/// a cheaper upper-bound kernel for long trajectories.
#[allow(clippy::needless_range_loop)] // symmetric a[i]/b[j] DP recurrence
pub fn distance_banded(a: &[Point], b: &[Point], band: usize) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "DTW distance of empty sequence");
    let (n, m) = (a.len(), b.len());
    // The band must cover the length difference or no path exists.
    let band = band.max(n.abs_diff(m));
    let mut prev = vec![f64::INFINITY; m];
    let mut curr = vec![f64::INFINITY; m];

    let hi0 = (band + 1).min(m);
    prev[0] = a[0].distance(&b[0]);
    for j in 1..hi0 {
        prev[j] = prev[j - 1] + a[0].distance(&b[j]);
    }
    for i in 1..n {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(band);
        let hi = (i + band + 1).min(m);
        for j in lo..hi {
            let mut best = prev[j];
            if j > 0 {
                best = best.min(curr[j - 1]).min(prev[j - 1]);
            }
            if best.is_finite() {
                curr[j] = best + a[i].distance(&b[j]);
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(distance(&a, &a), 0.0);
        assert!(within(&a, &a, 0.0));
    }

    #[test]
    fn single_point_cases_sum_all_distances() {
        // Definition 13, n = 1: sum over all matches.
        let a = pts(&[(0.0, 0.0)]);
        let b = pts(&[(1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(distance(&a, &b), 3.0);
        assert_eq!(distance(&b, &a), 3.0);
    }

    #[test]
    fn dtw_is_symmetric() {
        let a = pts(&[(0.0, 0.0), (2.0, 1.0), (4.0, 0.5)]);
        let b = pts(&[(0.5, -1.0), (2.5, 0.0), (3.5, 2.0), (4.5, 0.0)]);
        assert!((distance(&a, &b) - distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn dtw_aligns_shifted_sequences() {
        // A stutter at the start should cost almost nothing under DTW.
        let a = pts(&[(0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(distance(&a, &b), 0.0);
    }

    #[test]
    fn dtw_exceeds_every_point_min_distance() {
        // Lemma 5 for DTW (§VII-B): D >= d(q, T) for every q.
        let a = pts(&[(0.0, 0.0), (1.0, 2.0), (2.0, -1.0)]);
        let b = pts(&[(0.4, 0.3), (1.5, 1.0), (2.0, 0.0), (3.0, 1.0)]);
        let d = distance(&a, &b);
        for q in &a {
            let min_d = b.iter().map(|t| q.distance(t)).fold(f64::INFINITY, f64::min);
            assert!(d >= min_d - 1e-12);
        }
    }

    #[test]
    fn dtw_endpoint_lower_bounds() {
        // Lemma 12 for DTW: D >= d(q1,t1) and D >= d(qn,tm).
        let a = pts(&[(0.0, 0.0), (5.0, 5.0)]);
        let b = pts(&[(1.0, 0.0), (5.0, 7.0)]);
        let d = distance(&a, &b);
        assert!(d >= a[0].distance(&b[0]));
        assert!(d >= a[1].distance(&b[1]));
    }

    #[test]
    fn within_matches_distance() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.3), (2.0, -0.4), (3.0, 0.6)]);
        let b = pts(&[(0.2, 0.5), (1.4, -0.3), (2.4, 0.6)]);
        let d = distance(&a, &b);
        assert!(within(&a, &b, d + 1e-9));
        assert!(!within(&a, &b, d - 1e-9));
    }

    #[test]
    fn within_abandons_far_sequences() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(100.0, 100.0), (101.0, 100.0)]);
        assert!(!within(&a, &b, 1.0));
    }

    #[test]
    fn distance_within_is_bit_identical_on_hits() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.3), (2.0, -0.4), (3.0, 0.6)]);
        let b = pts(&[(0.2, 0.5), (1.4, -0.3), (2.4, 0.6)]);
        let d = distance(&a, &b);
        let got = distance_within(&a, &b, d * 2.0).expect("within generous eps");
        assert_eq!(got.to_bits(), d.to_bits());
        assert_eq!(distance_within(&a, &b, d * 0.5), None);
        assert_eq!(distance_within(&a, &b, -1.0), None);
        // DTW compares the sum directly — exact boundary equivalence.
        assert_eq!(distance_within(&a, &b, d), Some(d));
        for eps in [0.0, d * 0.9, d, d * 1.1] {
            assert_eq!(distance_within(&a, &b, eps).is_some(), within(&a, &b, eps), "eps {eps}");
        }
    }

    #[test]
    fn banded_with_full_band_equals_exact() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.5), (2.0, 0.0), (3.0, -0.5), (4.0, 0.0)]);
        let b = pts(&[(0.1, 0.2), (1.5, 0.0), (2.6, 0.4), (3.9, 0.1)]);
        let exact = distance(&a, &b);
        assert!((distance_banded(&a, &b, 10) - exact).abs() < 1e-12);
    }

    #[test]
    fn banded_is_an_upper_bound() {
        let a: Vec<Point> = (0..20).map(|i| Point::new(i as f64, (i % 3) as f64)).collect();
        let b: Vec<Point> = (0..25).map(|i| Point::new(i as f64 * 0.8, (i % 4) as f64)).collect();
        let exact = distance(&a, &b);
        for band in [1usize, 2, 5, 30] {
            assert!(distance_banded(&a, &b, band) >= exact - 1e-12, "band {band}");
        }
    }
}
