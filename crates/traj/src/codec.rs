//! Compact binary encoding of trajectories and DP features.
//!
//! This is the value format of the trajectory table (Table I): the `points`
//! column stores the raw point sequence, `dp-points` the representative
//! indices, and `dp-mbrs` the oriented covering boxes. Everything is
//! little-endian and length-prefixed; no self-describing serialization is
//! used because row values dominate the store's footprint.

use crate::dp::DpFeatures;
use std::fmt;
use trass_geo::{OrientedBox, Point};

/// Error decoding a stored value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the declared payload.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// A declared count or index was inconsistent with the data.
    Corrupt {
        /// What was being decoded.
        context: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { context } => {
                write!(f, "truncated value while decoding {context}")
            }
            CodecError::Corrupt { context } => write!(f, "corrupt value while decoding {context}"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Corrupt { context })?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated { context });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, CodecError> {
        let b = self.take(8, context)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_point(out: &mut Vec<u8>, p: &Point) {
    put_f64(out, p.x);
    put_f64(out, p.y);
}

fn read_point(r: &mut Reader<'_>, context: &'static str) -> Result<Point, CodecError> {
    Ok(Point::new(r.f64(context)?, r.f64(context)?))
}

/// Encodes a point sequence: `u32 count` then `count × (f64, f64)`.
pub fn encode_points(points: &[Point]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + points.len() * 16);
    put_u32(&mut out, points.len() as u32);
    for p in points {
        put_point(&mut out, p);
    }
    out
}

/// Decodes a point sequence written by [`encode_points`].
pub fn decode_points(buf: &[u8]) -> Result<Vec<Point>, CodecError> {
    let mut r = Reader::new(buf);
    let n = r.u32("points count")? as usize;
    // Guard against a corrupt count causing a huge allocation.
    if n.saturating_mul(16) > buf.len() {
        return Err(CodecError::Corrupt { context: "points count" });
    }
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        points.push(read_point(&mut r, "point")?);
    }
    if !r.finished() {
        return Err(CodecError::Corrupt { context: "trailing bytes after points" });
    }
    Ok(points)
}

/// Encodes DP features: representative indices and covering boxes.
/// Representative *points* are not stored — they are recoverable from the
/// raw point column, which is always fetched alongside.
pub fn encode_features(features: &DpFeatures) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(8 + features.rep_indices.len() * 4 + features.boxes.len() * 48);
    put_u32(&mut out, features.rep_indices.len() as u32);
    for &i in &features.rep_indices {
        put_u32(&mut out, i);
    }
    put_u32(&mut out, features.boxes.len() as u32);
    for b in &features.boxes {
        put_point(&mut out, &b.center);
        put_point(&mut out, &b.axis);
        put_f64(&mut out, b.half_u);
        put_f64(&mut out, b.half_v);
    }
    out
}

/// Decodes DP features written by [`encode_features`], resolving
/// representative points against the raw `points` column.
pub fn decode_features(buf: &[u8], points: &[Point]) -> Result<DpFeatures, CodecError> {
    let mut r = Reader::new(buf);
    let n_rep = r.u32("rep count")? as usize;
    if n_rep.saturating_mul(4) > buf.len() {
        return Err(CodecError::Corrupt { context: "rep count" });
    }
    let mut rep_indices = Vec::with_capacity(n_rep);
    for _ in 0..n_rep {
        rep_indices.push(r.u32("rep index")?);
    }
    let mut rep_points = Vec::with_capacity(n_rep);
    for &i in &rep_indices {
        let p = points
            .get(i as usize)
            .ok_or(CodecError::Corrupt { context: "rep index out of range" })?;
        rep_points.push(*p);
    }
    let n_boxes = r.u32("box count")? as usize;
    if n_boxes.saturating_mul(48) > buf.len() {
        return Err(CodecError::Corrupt { context: "box count" });
    }
    let mut boxes = Vec::with_capacity(n_boxes);
    for _ in 0..n_boxes {
        let center = read_point(&mut r, "box center")?;
        let axis = read_point(&mut r, "box axis")?;
        let half_u = r.f64("box half_u")?;
        let half_v = r.f64("box half_v")?;
        boxes.push(OrientedBox { center, axis, half_u, half_v });
    }
    if !r.finished() {
        return Err(CodecError::Corrupt { context: "trailing bytes after features" });
    }
    Ok(DpFeatures { rep_indices, rep_points, boxes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trajectory;

    fn sample_points() -> Vec<Point> {
        (0..20).map(|i| Point::new(i as f64 * 0.5, ((i * 7) % 5) as f64 - 2.0)).collect()
    }

    #[test]
    fn points_roundtrip() {
        let pts = sample_points();
        let enc = encode_points(&pts);
        assert_eq!(decode_points(&enc).unwrap(), pts);
    }

    #[test]
    fn empty_points_roundtrip() {
        let enc = encode_points(&[]);
        assert_eq!(decode_points(&enc).unwrap(), Vec::<Point>::new());
    }

    #[test]
    fn truncated_points_error() {
        let pts = sample_points();
        let enc = encode_points(&pts);
        for cut in [1, 3, enc.len() - 1] {
            assert!(matches!(
                decode_points(&enc[..cut]),
                Err(CodecError::Truncated { .. }) | Err(CodecError::Corrupt { .. })
            ));
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = encode_points(&sample_points());
        enc.push(0xFF);
        assert!(matches!(decode_points(&enc), Err(CodecError::Corrupt { .. })));
    }

    #[test]
    fn oversized_count_rejected_without_allocation() {
        let mut enc = Vec::new();
        enc.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_points(&enc), Err(CodecError::Corrupt { .. })));
    }

    #[test]
    fn features_roundtrip() {
        let pts = sample_points();
        let traj = Trajectory::new(1, pts.clone());
        let f = DpFeatures::extract(&traj, 0.5);
        let enc = encode_features(&f);
        let dec = decode_features(&enc, &pts).unwrap();
        assert_eq!(dec, f);
    }

    #[test]
    fn features_with_bad_index_rejected() {
        let pts = sample_points();
        let traj = Trajectory::new(1, pts.clone());
        let f = DpFeatures::extract(&traj, 0.5);
        let enc = encode_features(&f);
        // Decoding against a shorter point column invalidates indices.
        assert!(matches!(decode_features(&enc, &pts[..1]), Err(CodecError::Corrupt { .. })));
    }

    #[test]
    fn single_point_features_roundtrip() {
        let pts = vec![Point::new(1.0, 2.0)];
        let traj = Trajectory::new(9, pts.clone());
        let f = DpFeatures::extract(&traj, 0.01);
        let dec = decode_features(&encode_features(&f), &pts).unwrap();
        assert_eq!(dec, f);
        assert!(dec.boxes.is_empty());
    }

    #[test]
    fn encoding_is_compact() {
        // 20 points => 4 + 320 bytes exactly; no serialization overhead.
        let pts = sample_points();
        assert_eq!(encode_points(&pts).len(), 4 + 20 * 16);
    }
}
