//! Lower-bound envelopes for refinement prefiltering.
//!
//! Refinement pays an O(n·m) exact kernel for every candidate surviving the
//! XZ\* filter stages. REPOSE-style reference-point bounds show that most
//! survivors can be disposed of with O(n) arithmetic: compute a cheap
//! *lower bound* on the measure value, and when it already exceeds the
//! threshold the exact kernel is provably pointless. Every bound here is a
//! strict lower bound for the measures it claims, so pruning never changes
//! query results — the differential harness (`tests/refine_exactness.rs`)
//! and the property suite (`crates/traj/tests/bounds_props.rs`) hold the
//! implementation to that.
//!
//! Three bounds, evaluated cheap-first:
//!
//! 1. **Endpoint** (O(1), Fréchet and DTW only): both measures force the
//!    first and last points to couple, so
//!    `f(Q,T) ≥ max(d(q₁,t₁), d(qₙ,tₘ))` — the refinement-side twin of
//!    Lemma 12.
//! 2. **MBR gap** (O(1) given cached MBRs): every point-to-point distance
//!    is at least `dist(mbr(Q), mbr(T))`, and each supported measure's
//!    value dominates at least one point-to-point distance (Lemma 5 /
//!    §VII-B), so the rectangle gap lower-bounds all three measures.
//! 3. **Reference-point interval gap** (O(n), all measures): for a fixed
//!    reference point `r`, the triangle inequality gives
//!    `d(q,t) ≥ |d(q,r) − d(t,r)|` for every pair, hence
//!    `f(Q,T) ≥ gap([min_q d(q,r), max_q d(q,r)], [min_t d(t,r), max_t
//!    d(t,r)])`. The query-side intervals are cached in the envelope; the
//!    candidate side costs one pass over its points. Reference points are
//!    the query-MBR corners — any fixed points are sound, and corners
//!    discriminate along both axes and both diagonals.

use crate::measures::Measure;
use trass_geo::{Mbr, Point};

/// Number of reference points in an envelope (the query-MBR corners).
pub const N_REFS: usize = 4;

/// Rejection slack: bound arithmetic (rectangle gaps, interval endpoints)
/// rounds differently from the exact kernels, leaving ~1e-16 residue. A
/// bound may only prune when it *certainly* exceeds the threshold, so the
/// comparison allows this much headroom (matching the local filter's
/// slack) — the cost is a vanishingly rare unpruned candidate, never a
/// dropped result.
pub const PRUNE_SLACK: f64 = 1e-12;

/// Which lower bound proved a candidate dissimilar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    /// Endpoint coupling bound (Fréchet/DTW).
    Endpoint,
    /// Axis-aligned MBR gap.
    MbrGap,
    /// Reference-point interval gap.
    RefGap,
}

impl BoundKind {
    /// Stable textual name, used in trace fields and metric labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            BoundKind::Endpoint => "endpoint",
            BoundKind::MbrGap => "mbr-gap",
            BoundKind::RefGap => "ref-gap",
        }
    }
}

impl std::fmt::Display for BoundKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Query-side envelope: everything the bounds need from the query,
/// computed once per query and shared (read-only) across refine workers.
#[derive(Debug, Clone)]
pub struct QueryEnvelope {
    mbr: Mbr,
    first: Point,
    last: Point,
    refs: [Point; N_REFS],
    /// `[min_q d(q, refs[i]), max_q d(q, refs[i])]` per reference point.
    ref_intervals: [(f64, f64); N_REFS],
}

/// Distance interval `[min, max]` from a point set to a fixed point.
fn interval_to(points: &[Point], r: &Point) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for p in points {
        let d = p.distance(r);
        lo = lo.min(d);
        hi = hi.max(d);
    }
    (lo, hi)
}

/// Gap between two closed intervals (0 when they overlap).
fn interval_gap(a: (f64, f64), b: (f64, f64)) -> f64 {
    (b.0 - a.1).max(a.0 - b.1).max(0.0)
}

impl QueryEnvelope {
    /// Builds the envelope for a query point sequence. `None` for an empty
    /// query — there is nothing to bound (and nothing to search for).
    pub fn new(query: &[Point]) -> Option<QueryEnvelope> {
        let mbr = Mbr::from_points(query.iter())?;
        let refs = [
            Point::new(mbr.min_x, mbr.min_y),
            Point::new(mbr.min_x, mbr.max_y),
            Point::new(mbr.max_x, mbr.min_y),
            Point::new(mbr.max_x, mbr.max_y),
        ];
        let ref_intervals = [
            interval_to(query, &refs[0]),
            interval_to(query, &refs[1]),
            interval_to(query, &refs[2]),
            interval_to(query, &refs[3]),
        ];
        Some(QueryEnvelope {
            mbr,
            first: query[0],
            last: query[query.len() - 1],
            refs,
            ref_intervals,
        })
    }

    /// The endpoint lower bound `max(d(q₁,t₁), d(qₙ,tₘ))`. Only a valid
    /// lower bound for measures with
    /// [`Measure::supports_endpoint_lemma`]; callers gate on that.
    pub fn endpoint_bound(&self, cand: &[Point]) -> f64 {
        if cand.is_empty() {
            return 0.0;
        }
        self.first.distance(&cand[0]).max(self.last.distance(&cand[cand.len() - 1]))
    }

    /// The MBR-gap lower bound, valid for all supported measures. Sound
    /// for any `cand_mbr` that *covers* the candidate (a looser rectangle
    /// only shrinks the gap), so callers may pass the cached DP-feature
    /// MBR instead of the tight one.
    pub fn mbr_bound(&self, cand_mbr: &Mbr) -> f64 {
        self.mbr.distance_to_mbr(cand_mbr)
    }

    /// The reference-point interval-gap lower bound (max over the four
    /// reference points), valid for all supported measures.
    pub fn ref_bound(&self, cand: &[Point]) -> f64 {
        let mut best = 0.0f64;
        for (r, &qi) in self.refs.iter().zip(self.ref_intervals.iter()) {
            best = best.max(interval_gap(qi, interval_to(cand, r)));
        }
        best
    }

    /// Cheap-first composite prune test: `Some(kind)` when a bound proves
    /// `measure(query, cand) > threshold` (with [`PRUNE_SLACK`] headroom),
    /// naming the bound that fired; `None` when the candidate must go to
    /// the exact kernel. Empty candidates and non-finite thresholds never
    /// prune (nothing can exceed `+∞`).
    pub fn prunes(
        &self,
        cand: &[Point],
        cand_mbr: Option<&Mbr>,
        measure: Measure,
        threshold: f64,
    ) -> Option<BoundKind> {
        if cand.is_empty() || !threshold.is_finite() {
            return None;
        }
        let cut = threshold + PRUNE_SLACK;
        if measure.supports_endpoint_lemma() && self.endpoint_bound(cand) > cut {
            return Some(BoundKind::Endpoint);
        }
        let tight;
        let cmbr = match cand_mbr {
            Some(m) => m,
            None => {
                tight = Mbr::from_points(cand.iter())?;
                &tight
            }
        };
        if self.mbr_bound(cmbr) > cut {
            return Some(BoundKind::MbrGap);
        }
        if self.ref_bound(cand) > cut {
            return Some(BoundKind::RefGap);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn empty_query_has_no_envelope() {
        assert!(QueryEnvelope::new(&[]).is_none());
    }

    #[test]
    fn identical_trajectories_never_prune_at_zero() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.5), (2.0, 0.0)]);
        let env = QueryEnvelope::new(&a).unwrap();
        for m in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
            assert_eq!(env.prunes(&a, None, m, 0.0), None, "{m}");
        }
    }

    #[test]
    fn far_candidate_pruned_by_mbr_or_endpoint() {
        let q = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let t = pts(&[(100.0, 100.0), (101.0, 100.0)]);
        let env = QueryEnvelope::new(&q).unwrap();
        for m in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
            assert!(env.prunes(&t, None, m, 1.0).is_some(), "{m}");
        }
    }

    #[test]
    fn endpoint_bound_fires_before_mbr() {
        // Spatially overlapping trajectories traversed in opposite
        // directions: MBR gap is 0 but the endpoints are far apart.
        let q = pts(&[(0.0, 0.0), (10.0, 0.0)]);
        let t = pts(&[(10.0, 0.0), (0.0, 0.0)]);
        let env = QueryEnvelope::new(&q).unwrap();
        assert_eq!(env.prunes(&t, None, Measure::Frechet, 1.0), Some(BoundKind::Endpoint));
        // Hausdorff has no endpoint coupling and these point sets are
        // identical: no bound may fire.
        assert_eq!(env.prunes(&t, None, Measure::Hausdorff, 1.0), None);
    }

    #[test]
    fn ref_gap_catches_scale_mismatch() {
        // A tiny query inside a huge candidate ring: MBRs overlap and the
        // (Hausdorff-relevant) bounds must come from the distance
        // intervals to the reference corners.
        let q = pts(&[(0.0, 0.0), (0.1, 0.0), (0.0, 0.1)]);
        let t: Vec<Point> = (0..16)
            .map(|i| {
                let a = i as f64 / 16.0 * std::f64::consts::TAU;
                Point::new(50.0 * a.cos(), 50.0 * a.sin())
            })
            .collect();
        let env = QueryEnvelope::new(&q).unwrap();
        let d = Measure::Hausdorff.distance(&q, &t);
        assert!(env.ref_bound(&t) <= d + 1e-9);
        assert!(env.prunes(&t, None, Measure::Hausdorff, 10.0).is_some());
    }

    #[test]
    fn loose_candidate_mbr_stays_sound() {
        let q = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let t = pts(&[(5.0, 0.0), (6.0, 0.0)]);
        let env = QueryEnvelope::new(&q).unwrap();
        let tight = Mbr::from_points(t.iter()).unwrap();
        let loose = tight.extended(1.0);
        let d = Measure::Frechet.distance(&q, &t);
        assert!(env.mbr_bound(&loose) <= env.mbr_bound(&tight));
        assert!(env.mbr_bound(&loose) <= d + 1e-9);
    }

    #[test]
    fn infinite_threshold_never_prunes() {
        let q = pts(&[(0.0, 0.0)]);
        let t = pts(&[(1000.0, 1000.0)]);
        let env = QueryEnvelope::new(&q).unwrap();
        assert_eq!(env.prunes(&t, None, Measure::Frechet, f64::INFINITY), None);
    }

    #[test]
    fn bound_kind_names_are_stable() {
        assert_eq!(BoundKind::Endpoint.as_str(), "endpoint");
        assert_eq!(BoundKind::MbrGap.to_string(), "mbr-gap");
        assert_eq!(BoundKind::RefGap.as_str(), "ref-gap");
    }
}
