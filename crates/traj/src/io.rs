//! Trajectory import/export.
//!
//! Two text formats:
//!
//! * **Generic CSV** — `tid,lon,lat` per point, points grouped by
//!   consecutive `tid` runs ([`read_csv`] / [`write_csv`]). The round-trip
//!   format for this repository.
//! * **T-Drive release format** — `taxi_id,datetime,longitude,latitude`
//!   ([`read_tdrive`]), so the real dataset drops in for the synthetic
//!   generator when available.
//!
//! Parsers are tolerant: malformed lines and non-finite coordinates are
//! counted and skipped rather than aborting a multi-gigabyte import.

use crate::{Trajectory, TrajectoryId};
use std::io::{BufRead, Write};
use trass_geo::Point;

/// Statistics of a tolerant import.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Trajectories produced.
    pub trajectories: usize,
    /// Points accepted.
    pub points: usize,
    /// Lines skipped (malformed, non-finite, empty).
    pub skipped: usize,
}

/// Reads `tid,lon,lat` CSV. Consecutive rows with the same `tid` form one
/// trajectory; a `tid` reappearing later starts a new trajectory with the
/// same id (callers may re-id them).
pub fn read_csv<R: BufRead>(reader: R) -> std::io::Result<(Vec<Trajectory>, ImportReport)> {
    let mut report = ImportReport::default();
    let mut out: Vec<Trajectory> = Vec::new();
    let mut current: Option<(TrajectoryId, Vec<Point>)> = None;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            report.skipped += 1;
            continue;
        }
        let mut fields = line.split(',');
        let parsed = (|| {
            let tid: TrajectoryId = fields.next()?.trim().parse().ok()?;
            let lon: f64 = fields.next()?.trim().parse().ok()?;
            let lat: f64 = fields.next()?.trim().parse().ok()?;
            let p = Point::new(lon, lat);
            p.is_finite().then_some((tid, p))
        })();
        let Some((tid, p)) = parsed else {
            report.skipped += 1;
            continue;
        };
        report.points += 1;
        match &mut current {
            Some((cur_id, pts)) if *cur_id == tid => pts.push(p),
            _ => {
                flush(&mut current, &mut out, &mut report);
                current = Some((tid, vec![p]));
            }
        }
    }
    flush(&mut current, &mut out, &mut report);
    Ok((out, report))
}

fn flush(
    current: &mut Option<(TrajectoryId, Vec<Point>)>,
    out: &mut Vec<Trajectory>,
    report: &mut ImportReport,
) {
    if let Some((tid, pts)) = current.take() {
        if let Some(t) = Trajectory::try_new(tid, pts) {
            out.push(t);
            report.trajectories += 1;
        }
    }
}

/// Writes `tid,lon,lat` CSV readable by [`read_csv`].
pub fn write_csv<W: Write>(writer: &mut W, trajectories: &[Trajectory]) -> std::io::Result<()> {
    for t in trajectories {
        for p in t.points() {
            writeln!(writer, "{},{},{}", t.id, p.x, p.y)?;
        }
    }
    Ok(())
}

/// Reads the T-Drive release format: `taxi_id,datetime,longitude,latitude`
/// per line, one file usually per taxi. The datetime column is ignored
/// (TraSS indexes geometry only).
pub fn read_tdrive<R: BufRead>(reader: R) -> std::io::Result<(Vec<Trajectory>, ImportReport)> {
    let mut report = ImportReport::default();
    let mut out: Vec<Trajectory> = Vec::new();
    let mut current: Option<(TrajectoryId, Vec<Point>)> = None;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            report.skipped += 1;
            continue;
        }
        let mut fields = line.split(',');
        let parsed = (|| {
            let tid: TrajectoryId = fields.next()?.trim().parse().ok()?;
            let _datetime = fields.next()?;
            let lon: f64 = fields.next()?.trim().parse().ok()?;
            let lat: f64 = fields.next()?.trim().parse().ok()?;
            let p = Point::new(lon, lat);
            p.is_finite().then_some((tid, p))
        })();
        let Some((tid, p)) = parsed else {
            report.skipped += 1;
            continue;
        };
        report.points += 1;
        match &mut current {
            Some((cur_id, pts)) if *cur_id == tid => pts.push(p),
            _ => {
                flush(&mut current, &mut out, &mut report);
                current = Some((tid, vec![p]));
            }
        }
    }
    flush(&mut current, &mut out, &mut report);
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn csv_roundtrip() {
        let data = crate::generator::tdrive_like(17, 20);
        let mut buf = Vec::new();
        write_csv(&mut buf, &data).unwrap();
        let (back, report) = read_csv(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.len(), data.len());
        assert_eq!(report.trajectories, data.len());
        assert_eq!(report.skipped, 0);
        for (a, b) in data.iter().zip(back.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.points(), b.points());
        }
    }

    #[test]
    fn malformed_lines_skipped() {
        let input = "1,116.3,39.9\nnot-a-line\n1,116.31,39.91\n1,NaN,39.9\n\n2,117.0,40.0\n";
        let (trajs, report) = read_csv(BufReader::new(input.as_bytes())).unwrap();
        assert_eq!(trajs.len(), 2);
        assert_eq!(trajs[0].len(), 2);
        assert_eq!(trajs[1].len(), 1);
        assert_eq!(report.points, 3);
        assert_eq!(report.skipped, 3);
    }

    #[test]
    fn comments_skipped() {
        let input = "# header\n5,1.0,2.0\n";
        let (trajs, report) = read_csv(BufReader::new(input.as_bytes())).unwrap();
        assert_eq!(trajs.len(), 1);
        assert_eq!(trajs[0].id, 5);
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn tdrive_format_parses() {
        let input = "\
366,2008-02-02 15:36:08,116.51172,39.92123
366,2008-02-02 15:46:08,116.51135,39.93883
368,2008-02-02 15:20:00,116.30000,39.90000
";
        let (trajs, report) = read_tdrive(BufReader::new(input.as_bytes())).unwrap();
        assert_eq!(trajs.len(), 2);
        assert_eq!(trajs[0].id, 366);
        assert_eq!(trajs[0].len(), 2);
        assert!((trajs[0].points()[0].x - 116.51172).abs() < 1e-9);
        assert_eq!(trajs[1].id, 368);
        assert_eq!(report.points, 3);
    }

    #[test]
    fn empty_input() {
        let (trajs, report) = read_csv(BufReader::new(&b""[..])).unwrap();
        assert!(trajs.is_empty());
        assert_eq!(report, ImportReport::default());
    }
}
