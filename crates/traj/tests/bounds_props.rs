//! Property suite for the refinement lower bounds and the single-pass
//! exact-or-abandon kernels (the trass-traj half of the PR-level
//! exactness contract; `tests/refine_exactness.rs` covers the query
//! pipeline half).
//!
//! These are hand-rolled property loops rather than `proptest!` blocks so
//! each property provably runs its full case budget (≥ 256 randomized
//! cases) regardless of the proptest runner's configuration, with a fixed
//! seed for reproducibility.

use trass_geo::{Mbr, Point};
use trass_traj::bounds::{BoundKind, QueryEnvelope, PRUNE_SLACK};
use trass_traj::Measure;

const CASES: usize = 300; // ≥ 256 per property, per measure

const MEASURES: [Measure; 3] = [Measure::Frechet, Measure::Hausdorff, Measure::Dtw];

/// xorshift64* — deterministic, dependency-free case generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Uniform usize in `[lo, hi]`.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }

    /// A random trajectory of 1..=15 points in [-10, 10]² — the same
    /// envelope the measure property tests use — with occasional
    /// duplicated points (stuttering GPS fixes).
    fn traj(&mut self) -> Vec<Point> {
        let n = self.usize_in(1, 15);
        let mut pts = Vec::with_capacity(n);
        for _ in 0..n {
            if !pts.is_empty() && self.next() % 8 == 0 {
                pts.push(*pts.last().unwrap()); // duplicate point
            } else {
                pts.push(Point::new(self.f64_in(-10.0, 10.0), self.f64_in(-10.0, 10.0)));
            }
        }
        pts
    }

    /// A trajectory pair: mostly independent, sometimes near-duplicates or
    /// coincident so the "similar" side of every threshold is exercised.
    fn pair(&mut self) -> (Vec<Point>, Vec<Point>) {
        let a = self.traj();
        let b = match self.next() % 4 {
            0 => a.clone(), // coincident
            1 => {
                // Jittered copy: distances near zero but not exactly.
                let dx = self.f64_in(-0.01, 0.01);
                let dy = self.f64_in(-0.01, 0.01);
                a.iter().map(|p| Point::new(p.x + dx, p.y + dy)).collect()
            }
            _ => self.traj(),
        };
        (a, b)
    }
}

#[test]
fn every_lower_bound_is_at_most_the_exact_distance() {
    let mut rng = Rng::new(0xB0D5);
    for case in 0..CASES {
        let (q, t) = rng.pair();
        let env = QueryEnvelope::new(&q).expect("non-empty query");
        let tmbr = Mbr::from_points(t.iter()).expect("non-empty candidate");
        for m in MEASURES {
            let d = m.distance(&q, &t);
            if m.supports_endpoint_lemma() {
                let eb = env.endpoint_bound(&t);
                assert!(eb <= d + PRUNE_SLACK, "case {case} {m}: endpoint {eb} > distance {d}");
            }
            let mb = env.mbr_bound(&tmbr);
            assert!(mb <= d + PRUNE_SLACK, "case {case} {m}: mbr-gap {mb} > distance {d}");
            let rb = env.ref_bound(&t);
            assert!(rb <= d + PRUNE_SLACK, "case {case} {m}: ref-gap {rb} > distance {d}");
        }
    }
}

#[test]
fn prune_never_fires_at_or_above_the_exact_distance() {
    // The composite check at threshold = distance (and looser) must never
    // prune: pruning a true hit is exactly the bug class this PR's
    // differential harness exists to rule out.
    let mut rng = Rng::new(0x50F7);
    for case in 0..CASES {
        let (q, t) = rng.pair();
        let env = QueryEnvelope::new(&q).expect("non-empty query");
        let tmbr = Mbr::from_points(t.iter()).expect("non-empty candidate");
        for m in MEASURES {
            let d = m.distance(&q, &t);
            for threshold in [d, d * 1.5 + 0.1, f64::INFINITY] {
                assert_eq!(
                    env.prunes(&t, Some(&tmbr), m, threshold),
                    None,
                    "case {case} {m}: pruned a candidate at distance {d} ≤ threshold {threshold}"
                );
            }
        }
    }
}

#[test]
fn prune_verdicts_are_correct_when_they_fire() {
    // Whenever a bound does fire, the exact distance really exceeds the
    // threshold — over random (mostly dissimilar) pairs and thresholds.
    let mut rng = Rng::new(0xF14E);
    let mut fired = 0u64;
    for case in 0..CASES {
        let (q, t) = rng.pair();
        let env = QueryEnvelope::new(&q).expect("non-empty query");
        for m in MEASURES {
            let threshold = rng.f64_in(0.0, 5.0);
            if let Some(kind) = env.prunes(&t, None, m, threshold) {
                fired += 1;
                let d = m.distance(&q, &t);
                assert!(
                    d > threshold,
                    "case {case} {m}: {kind} pruned at threshold {threshold} but distance is {d}"
                );
            }
        }
    }
    assert!(fired > 100, "prune fired only {fired} times — the property is vacuous");
}

#[test]
fn within_agrees_with_exact_distance_comparison() {
    let mut rng = Rng::new(0x417B);
    for case in 0..CASES {
        let (a, b) = rng.pair();
        for m in MEASURES {
            let d = m.distance(&a, &b);
            // Exactly at the boundary the squared-space decision and the
            // sqrt-space comparison can legitimately differ by one ulp;
            // the seed's measure tests use the same relative margin.
            assert!(m.within(&a, &b, d + 1e-9), "case {case} {m}: within false at d+");
            if d > 1e-9 {
                assert!(!m.within(&a, &b, d - 1e-9), "case {case} {m}: within true at d-");
            }
            let eps = rng.f64_in(0.0, 15.0);
            if (d - eps).abs() > 1e-9 {
                assert_eq!(m.within(&a, &b, eps), d <= eps, "case {case} {m} eps {eps} d {d}");
            }
        }
    }
}

#[test]
fn distance_within_is_exactly_the_two_pass_composition() {
    // The fused kernel must agree with `within` verdict-for-verdict (no
    // float tolerance: both decide in the same squared/summed space) and
    // return the bit-identical exact value on every hit. This is the
    // kernel-level statement of the differential-exactness contract.
    let mut rng = Rng::new(0xD1FF);
    for case in 0..CASES {
        let (a, b) = rng.pair();
        for m in MEASURES {
            let d = m.distance(&a, &b);
            for eps in [0.0, d * 0.5, d, d + 1e-12, d * 2.0, rng.f64_in(0.0, 30.0)] {
                let fused = m.distance_within(&a, &b, eps);
                assert_eq!(
                    fused.is_some(),
                    m.within(&a, &b, eps),
                    "case {case} {m} eps {eps}: fused verdict diverged from within"
                );
                if let Some(got) = fused {
                    assert_eq!(
                        got.to_bits(),
                        d.to_bits(),
                        "case {case} {m} eps {eps}: fused value {got} != distance {d}"
                    );
                }
            }
        }
    }
}

#[test]
fn degenerate_trajectories_are_handled_everywhere() {
    let single = vec![Point::new(1.0, 2.0)];
    let dup = vec![Point::new(1.0, 2.0); 5];
    let line = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
    let shapes: [&[Point]; 3] = [&single, &dup, &line];
    for m in MEASURES {
        for a in shapes {
            for b in shapes {
                let d = m.distance(a, b);
                assert!(d.is_finite() && d >= 0.0, "{m}");
                assert_eq!(m.distance_within(a, b, d + 1.0).map(f64::to_bits), Some(d.to_bits()));
                assert!(m.within(a, b, d + 1e-9));
                let env = QueryEnvelope::new(a).expect("non-empty");
                assert_eq!(env.prunes(b, None, m, d), None, "{m}: pruned at exact distance");
            }
            // Coincident trajectories: zero distance, no prune at ε = 0.
            assert_eq!(m.distance(a, a), 0.0, "{m}");
            assert_eq!(m.distance_within(a, a, 0.0), Some(0.0), "{m}");
            let env = QueryEnvelope::new(a).expect("non-empty");
            assert_eq!(env.prunes(a, None, m, 0.0), None, "{m}");
        }
    }
}

#[test]
fn single_point_reference_intervals_collapse_correctly() {
    // A single-point query has a degenerate MBR (all four reference
    // corners coincide); bounds must still be sound and still fire.
    let q = vec![Point::new(0.0, 0.0)];
    let env = QueryEnvelope::new(&q).expect("non-empty");
    let far = vec![Point::new(9.0, 0.0), Point::new(11.0, 0.0)];
    for m in MEASURES {
        let d = m.distance(&q, &far);
        assert!(env.ref_bound(&far) <= d + PRUNE_SLACK, "{m}");
        assert!(env.prunes(&far, None, m, 1.0).is_some(), "{m}: far pair not pruned");
    }
    // Hausdorff-visible: ref-gap fires where the endpoint bound cannot.
    assert!(matches!(
        env.prunes(&far, None, Measure::Hausdorff, 1.0),
        Some(BoundKind::MbrGap) | Some(BoundKind::RefGap)
    ));
}
