//! Property-based tests of the similarity-measure kernels: the metric and
//! lower-bound facts the pruning lemmas are built on.

use proptest::prelude::*;
use trass_geo::Point;
use trass_traj::measures::{dtw, edr, erp, frechet, hausdorff};
use trass_traj::Measure;

fn seq() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..15)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frechet_dominates_hausdorff(a in seq(), b in seq()) {
        // Hausdorff relaxes Fréchet's monotone coupling to free matching.
        prop_assert!(hausdorff::distance(&a, &b) <= frechet::distance(&a, &b) + 1e-9);
    }

    #[test]
    fn frechet_symmetric_and_identity(a in seq(), b in seq()) {
        prop_assert!((frechet::distance(&a, &b) - frechet::distance(&b, &a)).abs() < 1e-9);
        prop_assert_eq!(frechet::distance(&a, &a), 0.0);
    }

    #[test]
    fn frechet_triangle_inequality(a in seq(), b in seq(), c in seq()) {
        let ab = frechet::distance(&a, &b);
        let bc = frechet::distance(&b, &c);
        let ac = frechet::distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9, "{ac} > {ab} + {bc}");
    }

    #[test]
    fn hausdorff_triangle_inequality(a in seq(), b in seq(), c in seq()) {
        let ab = hausdorff::distance(&a, &b);
        let bc = hausdorff::distance(&b, &c);
        let ac = hausdorff::distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn lemma5_any_point_lower_bound(a in seq(), b in seq()) {
        // Lemma 5 (§V-B) for every pruning-safe measure: for every point p
        // of A, min-dist(p, B) lower-bounds the measure.
        for measure in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
            let d = measure.distance(&a, &b);
            for p in &a {
                let min_d = b.iter().map(|q| p.distance(q)).fold(f64::INFINITY, f64::min);
                prop_assert!(d >= min_d - 1e-9, "{measure} violated Lemma 5");
            }
        }
    }

    #[test]
    fn lemma12_endpoint_lower_bound(a in seq(), b in seq()) {
        // Lemma 12 for Fréchet and DTW: endpoints must couple.
        for measure in [Measure::Frechet, Measure::Dtw] {
            let d = measure.distance(&a, &b);
            prop_assert!(d >= a[0].distance(&b[0]) - 1e-9);
            prop_assert!(d >= a[a.len() - 1].distance(&b[b.len() - 1]) - 1e-9);
        }
    }

    #[test]
    fn within_agrees_with_distance(a in seq(), b in seq(), eps in 0.0f64..30.0) {
        for measure in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
            let d = measure.distance(&a, &b);
            // Avoid asserting exactly at the boundary (floating point).
            if (d - eps).abs() > 1e-6 {
                prop_assert_eq!(
                    measure.within(&a, &b, eps),
                    d <= eps,
                    "{} at d = {}, eps = {}", measure, d, eps
                );
            }
        }
    }

    #[test]
    fn dtw_dominates_frechet_scaled(a in seq(), b in seq()) {
        // DTW sums ≥ max coupled pair ≥ ... it always dominates the best
        // single coupling step, hence ≥ max(d(start), d(end)) but also the
        // whole path cost is ≥ Fréchet only when lengths are 1; instead
        // check the sound general fact: DTW ≥ Hausdorff directed from the
        // shorter... keep to the provable one: DTW ≥ max endpoint pair.
        let d = dtw::distance(&a, &b);
        prop_assert!(d >= a[0].distance(&b[0]) - 1e-9);
    }

    #[test]
    fn erp_is_a_metric_on_samples(a in seq(), b in seq(), c in seq()) {
        let g = Point::ORIGIN;
        let ab = erp::distance(&a, &b, g);
        let ba = erp::distance(&b, &a, g);
        prop_assert!((ab - ba).abs() < 1e-9, "ERP asymmetric");
        let bc = erp::distance(&b, &c, g);
        let ac = erp::distance(&a, &c, g);
        prop_assert!(ac <= ab + bc + 1e-9, "ERP triangle violated");
        prop_assert_eq!(erp::distance(&a, &a, g), 0.0);
    }

    #[test]
    fn edr_bounds_and_symmetry(a in seq(), b in seq(), tau in 0.0f64..5.0) {
        let d = edr::distance(&a, &b, tau);
        prop_assert!(d <= a.len().max(b.len()));
        prop_assert!(d >= a.len().abs_diff(b.len()));
        prop_assert_eq!(d, edr::distance(&b, &a, tau));
        let s = edr::similarity(&a, &b, tau);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn larger_tau_never_increases_edr(a in seq(), b in seq(), tau in 0.0f64..5.0) {
        prop_assert!(edr::distance(&a, &b, tau * 2.0) <= edr::distance(&a, &b, tau));
    }
}
