//! Micro-benchmarks of the similarity kernels — the cost local filtering
//! exists to avoid paying.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trass_geo::Point;
use trass_traj::measures::{dtw, frechet, hausdorff};

fn wiggle(n: usize, seed: f64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Point::new(t * 10.0, (t * 20.0 + seed).sin() * 0.5 + seed * 0.01)
        })
        .collect()
}

fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("measures");
    for &n in &[50usize, 200, 800] {
        let a = wiggle(n, 0.0);
        let b = wiggle(n, 1.0);
        group.bench_with_input(BenchmarkId::new("frechet", n), &n, |bch, _| {
            bch.iter(|| black_box(frechet::distance(black_box(&a), black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("frechet_within", n), &n, |bch, _| {
            bch.iter(|| black_box(frechet::within(black_box(&a), black_box(&b), 0.1)))
        });
        group.bench_with_input(BenchmarkId::new("hausdorff", n), &n, |bch, _| {
            bch.iter(|| black_box(hausdorff::distance(black_box(&a), black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("dtw", n), &n, |bch, _| {
            bch.iter(|| black_box(dtw::distance(black_box(&a), black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("dtw_within", n), &n, |bch, _| {
            bch.iter(|| black_box(dtw::within(black_box(&a), black_box(&b), 0.5)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-machine reproduction: keep sampling light.
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_measures
}
criterion_main!(benches);
