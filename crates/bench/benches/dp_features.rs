//! Micro-benchmarks of Douglas-Peucker feature extraction and the local
//! filtering predicates (Lemmas 13–14).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trass_geo::Point;
use trass_traj::{DpFeatures, Trajectory};

fn gps_trace(n: usize, seed: f64) -> Trajectory {
    let points = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Point::new(
                116.3 + t * 0.1 + (t * 37.0 + seed).sin() * 0.002,
                39.9 + (t * 11.0 + seed).cos() * 0.01,
            )
        })
        .collect();
    Trajectory::new(0, points)
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp");
    for &n in &[100usize, 500, 2000] {
        let t = gps_trace(n, 0.0);
        group.bench_with_input(BenchmarkId::new("extract", n), &n, |b, _| {
            b.iter(|| black_box(DpFeatures::extract(black_box(&t), 0.001)))
        });
    }
    let a = DpFeatures::extract(&gps_trace(500, 0.0), 0.001);
    let b_feat = DpFeatures::extract(&gps_trace(500, 2.0), 0.001);
    group.bench_function("lemma13_rep_points_within", |b| {
        b.iter(|| black_box(a.rep_points_within(black_box(&b_feat), 0.01)))
    });
    group.bench_function("lemma14_boxes_within", |b| {
        b.iter(|| black_box(a.boxes_within(black_box(&b_feat), 0.01)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-machine reproduction: keep sampling light.
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_dp
}
criterion_main!(benches);
