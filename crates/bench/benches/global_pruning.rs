//! Micro-benchmarks of global pruning: Algorithm 1's range generation and
//! the ablations of its lemmas (position codes, distance bounds) — the
//! "pruning time" axis of Fig. 11(a).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trass_geo::{NormalizedSpace, Point};
use trass_index::xzstar::{BestFirst, GlobalPruning, PruningConfig, QueryContext, XzStar};

fn unit_query(seed: u64) -> Vec<Point> {
    let space = NormalizedSpace::square(trass_traj::generator::BEIJING);
    let traj = &trass_traj::generator::tdrive_like(seed, 10)[3];
    traj.points().iter().map(|p| space.to_unit(p)).collect()
}

fn bench_pruning(c: &mut Criterion) {
    let index = XzStar::new(16);
    let points = unit_query(21);
    let mut group = c.benchmark_group("global_pruning");
    for &eps in &[0.0005f64, 0.002, 0.01] {
        group.bench_with_input(BenchmarkId::new("full", format!("{eps}")), &eps, |b, &eps| {
            let pruner = GlobalPruning::new(&index, PruningConfig::default());
            b.iter(|| {
                let ctx = QueryContext::new(&index, points.clone(), eps);
                black_box(pruner.query_ranges(&ctx).len())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("no_position_codes", format!("{eps}")),
            &eps,
            |b, &eps| {
                let pruner = GlobalPruning::new(
                    &index,
                    PruningConfig { use_position_codes: false, ..PruningConfig::default() },
                );
                b.iter(|| {
                    let ctx = QueryContext::new(&index, points.clone(), eps);
                    black_box(pruner.query_ranges(&ctx).len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("no_min_dist", format!("{eps}")),
            &eps,
            |b, &eps| {
                let pruner = GlobalPruning::new(
                    &index,
                    PruningConfig { use_min_dist: false, ..PruningConfig::default() },
                );
                b.iter(|| {
                    let ctx = QueryContext::new(&index, points.clone(), eps);
                    black_box(pruner.query_ranges(&ctx).len())
                })
            },
        );
    }
    group.finish();

    c.bench_function("best_first/first_100_spaces", |b| {
        b.iter(|| {
            let mut bf = BestFirst::new(&index, points.clone());
            let mut n = 0;
            while let Some(s) = bf.next_space(f64::INFINITY) {
                black_box(s.value);
                n += 1;
                if n == 100 {
                    break;
                }
            }
            n
        })
    });
}

criterion_group! {
    name = benches;
    // Single-machine reproduction: keep sampling light.
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_pruning
}
criterion_main!(benches);
