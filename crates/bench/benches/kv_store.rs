//! Micro-benchmarks of the LSM store: put throughput, point gets, range
//! scans with and without filter push-down.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use trass_kv::{FilterDecision, KeyRange, LsmStore, StoreOptions};

fn filled_store(n: u32) -> LsmStore {
    let store = LsmStore::open(StoreOptions::in_memory()).expect("open");
    for i in 0..n {
        let key = format!("key-{i:08}");
        let value = format!("value-payload-{i:08}-{}", "x".repeat(64));
        store.put(key, value).expect("put");
    }
    store.flush().expect("flush");
    store
}

fn bench_kv(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("put_10k", |b| {
        b.iter(|| {
            let store = LsmStore::open(StoreOptions::in_memory()).expect("open");
            for i in 0..10_000u32 {
                store.put(format!("key-{i:08}"), format!("value-{i}")).expect("put");
            }
            black_box(store.memtable_len());
        })
    });
    group.finish();

    let store = filled_store(50_000);
    c.bench_function("kv/get_hit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % 50_000;
            black_box(store.get(format!("key-{i:08}").as_bytes()).expect("get"))
        })
    });
    c.bench_function("kv/get_miss", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % 50_000;
            black_box(store.get(format!("key-{i:08}x").as_bytes()).expect("get"))
        })
    });
    c.bench_function("kv/scan_1k", |b| {
        b.iter(|| {
            let r = KeyRange::new(&b"key-00010000"[..], &b"key-00011000"[..]);
            black_box(store.scan(r).expect("scan").len())
        })
    });
    c.bench_function("kv/scan_1k_filtered", |b| {
        let filter = |_k: &[u8], v: &[u8]| {
            if v.len() % 2 == 0 {
                FilterDecision::Keep
            } else {
                FilterDecision::Skip
            }
        };
        b.iter(|| {
            let r = KeyRange::new(&b"key-00010000"[..], &b"key-00011000"[..]);
            black_box(store.scan_filtered(r, &filter).expect("scan").len())
        })
    });
}

criterion_group! {
    name = benches;
    // Single-machine reproduction: keep sampling light.
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_kv
}
criterion_main!(benches);
