//! Micro-benchmarks of the XZ\* and XZ-Ordering encodings: sequence-length
//! computation, indexing, encode/decode — the per-write cost of the static
//! index (Fig. 13's "TraSS and JUST adopt the static index structure").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use trass_geo::{Mbr, NormalizedSpace, Point};
use trass_index::xz2::Xz2;
use trass_index::xzstar::XzStar;

fn sample_trajectories(n: usize) -> Vec<Vec<Point>> {
    let space = NormalizedSpace::square(trass_traj::generator::BEIJING);
    trass_traj::generator::tdrive_like(5, n)
        .into_iter()
        .map(|t| t.points().iter().map(|p| space.to_unit(p)).collect())
        .collect()
}

fn bench_encoding(c: &mut Criterion) {
    let index = XzStar::new(16);
    let xz2 = Xz2::new(16);
    let trajs = sample_trajectories(200);
    let mbrs: Vec<Mbr> = trajs.iter().map(|t| Mbr::from_points(t.iter()).unwrap()).collect();
    let spaces: Vec<_> = trajs.iter().map(|t| index.index_points(t)).collect();
    let values: Vec<u64> = spaces.iter().map(|s| index.encode(s)).collect();

    c.bench_function("xzstar/sequence_length", |b| {
        b.iter(|| {
            for m in &mbrs {
                black_box(index.sequence_length(black_box(m)));
            }
        })
    });
    c.bench_function("xzstar/index_points", |b| {
        b.iter(|| {
            for t in &trajs {
                black_box(index.index_points(black_box(t)));
            }
        })
    });
    c.bench_function("xzstar/encode", |b| {
        b.iter(|| {
            for s in &spaces {
                black_box(index.encode(black_box(s)));
            }
        })
    });
    c.bench_function("xzstar/decode", |b| {
        b.iter(|| {
            for v in &values {
                black_box(index.decode(black_box(*v)));
            }
        })
    });
    c.bench_function("xz2/encode_mbr", |b| {
        b.iter(|| {
            for m in &mbrs {
                black_box(xz2.encode(&xz2.index_mbr(black_box(m))));
            }
        })
    });
}

criterion_group! {
    name = benches;
    // Single-machine reproduction: keep sampling light.
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_encoding
}
criterion_main!(benches);
