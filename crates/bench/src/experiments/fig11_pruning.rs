//! Fig. 11 — effect of pruning strategies at ε = 0.01: (a) pruning time,
//! (b) retrieved trajectories, (c) precision (final answers / candidates).

use crate::datasets::{self, Dataset};
use crate::harness;
use crate::report::Reporter;
use trass_traj::Measure;

/// The fixed threshold of §VI-C.
pub const EPS: f64 = 0.01;

/// Runs the experiment.
pub fn run() {
    let mut rep = Reporter::new("fig11");
    for ds in [datasets::tdrive(), datasets::lorry()] {
        run_dataset(&ds, &mut rep);
    }
    let path = rep.finish();
    println!("fig11 rows appended to {}", path.display());
}

fn run_dataset(ds: &Dataset, rep: &mut Reporter) {
    let queries = datasets::queries(ds, datasets::n_queries());
    let solutions = harness::build_all(ds);

    let agg = harness::run_trass_threshold(&solutions.trass, &queries, EPS, Measure::Frechet);
    rep.row(
        ds.name,
        "TraSS",
        "eps",
        EPS,
        &[
            ("pruning_ms", agg.mean_pruning_time.as_secs_f64() * 1e3),
            ("retrieved", agg.mean_retrieved),
            ("precision", agg.mean_precision),
        ],
    );
    for engine in &solutions.baselines {
        if let Some(agg) =
            harness::run_engine_threshold(engine.as_ref(), &queries, EPS, Measure::Frechet)
        {
            rep.row(
                ds.name,
                engine.name(),
                "eps",
                EPS,
                &[
                    // Baselines interleave pruning and scanning; their
                    // filter phase is the whole pre-refinement time, which
                    // we approximate as query time minus refinement —
                    // reported as total here, a conservative (favourable)
                    // number for them.
                    ("pruning_ms", agg.median_time.as_secs_f64() * 1e3),
                    ("retrieved", agg.mean_retrieved),
                    ("precision", agg.mean_precision),
                ],
            );
        }
    }
}
