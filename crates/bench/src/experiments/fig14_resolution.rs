//! Fig. 14–15 — varying the maximum resolution ∈ {14, 16, 18, 20}:
//! selectivity (distinct index values / rows) and query time for both
//! query types, on both datasets.
//!
//! The paper's observation: resolution 14 under-discriminates (low
//! selectivity → more false hits), very deep resolutions buy nothing;
//! 16 is the sweet spot.

use crate::datasets::{self, Dataset};
use crate::harness;
use crate::report::Reporter;
use std::collections::HashSet;
use trass_index::xzstar::XzStar;
use trass_traj::Measure;

/// The resolution sweep of §VI-D.
pub const RESOLUTIONS: [u8; 4] = [14, 16, 18, 20];

/// Runs the experiment.
pub fn run() {
    let mut rep = Reporter::new("fig14");
    for ds in [datasets::tdrive(), datasets::lorry()] {
        run_dataset(&ds, &mut rep);
    }
    let path = rep.finish();
    println!("fig14 rows appended to {}", path.display());
}

/// Selectivity: distinct index values over rows (§VI-D's definition: "the
/// ratio of index values to that of the row keys").
pub fn selectivity(ds: &Dataset, resolution: u8) -> f64 {
    let space = trass_geo::WORLD_SQUARE;
    let index = XzStar::new(resolution);
    let mut distinct = HashSet::new();
    for t in &ds.data {
        let unit: Vec<_> = t.points().iter().map(|p| space.to_unit(p)).collect();
        distinct.insert(index.encode(&index.index_points(&unit)));
    }
    distinct.len() as f64 / ds.data.len() as f64
}

fn run_dataset(ds: &Dataset, rep: &mut Reporter) {
    let queries = datasets::queries(ds, (datasets::n_queries() / 2).max(5));
    for resolution in RESOLUTIONS {
        let sel = selectivity(ds, resolution);
        let (store, _) = harness::build_trass(ds, resolution, 8);
        let th = harness::run_trass_threshold(&store, &queries, 0.01, Measure::Frechet);
        let tk = harness::run_trass_topk(&store, &queries, 50, Measure::Frechet);
        rep.row(
            ds.name,
            "TraSS",
            "res",
            resolution as f64,
            &[
                ("selectivity", sel),
                ("threshold_ms", th.median_time.as_secs_f64() * 1e3),
                ("topk_ms", tk.median_time.as_secs_f64() * 1e3),
                ("threshold_retrieved", th.mean_retrieved),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_grows_with_resolution() {
        // Fig. 14(a)/15(a): resolution 14's selectivity is lowest.
        std::env::remove_var("TRASS_REPRO_SCALE");
        let ds = datasets::tdrive();
        let s14 = selectivity(&ds, 14);
        let s16 = selectivity(&ds, 16);
        let s20 = selectivity(&ds, 20);
        assert!(s14 < s16, "s14 {s14} !< s16 {s16}");
        assert!(s16 <= s20 + 1e-9, "s16 {s16} !<= s20 {s20}");
        assert!(s14 > 0.0 && s20 <= 1.0);
    }
}
