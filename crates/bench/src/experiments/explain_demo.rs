//! EXPLAIN ANALYZE demo — not a paper figure.
//!
//! Builds TraSS over a Gaussian hotspot workload and prints the full query
//! trace for one threshold and one top-k search, in both renderings: the
//! human-readable span tree (indentation + % of parent time) and the JSON
//! document. This is the end-to-end check that the tracing pipeline — root
//! span, per-stage children, per-shard `region-scan` spans, per-lemma
//! pruning counters — survives a real workload, plus a peek at the flight
//! recorder's view of traced background queries.

use crate::datasets;
use crate::harness;
use trass_core::store::ExplainQuery;
use trass_geo::Mbr;
use trass_traj::Measure;

/// Runs the demo.
pub fn run() {
    let ds = datasets::gaussian();
    let (store, _build) = harness::build_trass(&ds, 16, 8);
    let queries = datasets::queries(&ds, 2.max(datasets::n_queries()));
    let q = &queries[0];

    println!("\n== explain: threshold (eps=0.01, frechet) ==");
    let explained = store
        .explain(ExplainQuery::Threshold { query: q, eps: 0.01, measure: Measure::Frechet })
        .expect("threshold explain");
    println!("{}", explained.trace.render_text());

    println!("== explain: top-k (k=10, frechet) ==");
    let explained = store
        .explain(ExplainQuery::TopK { query: q, k: 10, measure: Measure::Frechet })
        .expect("topk explain");
    println!("{}", explained.trace.render_text());

    println!("== explain: range (query mbr, json rendering) ==");
    let m = q.mbr();
    let window = Mbr::new(m.min_x - 0.01, m.min_y - 0.01, m.max_x + 0.01, m.max_y + 0.01);
    let explained = store.explain(ExplainQuery::Range { window }).expect("range explain");
    println!("{}", explained.trace.render_json());

    // Each explain call also lands in the flight recorder.
    let flight = store.flight_recorder().snapshot();
    println!("\nflight recorder: {} trace(s) retained", flight.len());
    for t in &flight {
        println!("  {} ({} spans)", t.root.name, t.root.span_count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Dataset;
    use trass_traj::generator;

    #[test]
    fn demo_traces_render_both_ways() {
        let ds = Dataset {
            name: "Gaussian",
            data: generator::gaussian_like(45, 120),
            extent: generator::BEIJING,
        };
        let (store, _build) = harness::build_trass(&ds, 16, 4);
        let q = &ds.data[0];
        let explained = store
            .explain(ExplainQuery::Threshold { query: q, eps: 0.01, measure: Measure::Frechet })
            .unwrap();
        let text = explained.trace.render_text();
        assert!(text.contains("threshold"));
        assert!(text.contains("pruning"));
        let json = explained.trace.render_json();
        let back = trass_obs::QueryTrace::from_json(&json).unwrap();
        assert_eq!(back.render_json(), json);
    }
}
