//! Fig. 13 — overhead: (a)(b) indexing time of every solution on both
//! datasets; (c) average rowkey bytes under TraSS's integer encoding vs
//! the TraSS-S string encoding (the paper reports −32 % on T-Drive and
//! −27 % on Lorry).

use crate::datasets::{self, Dataset};
use crate::harness;
use crate::report::Reporter;
use trass_core::schema::{rowkey, string_rowkey};
use trass_index::xzstar::XzStar;

/// Runs the experiment.
pub fn run() {
    let mut rep = Reporter::new("fig13");
    for ds in [datasets::tdrive(), datasets::lorry()] {
        run_dataset(&ds, &mut rep);
    }
    let path = rep.finish();
    println!("fig13 rows appended to {}", path.display());
}

fn run_dataset(ds: &Dataset, rep: &mut Reporter) {
    // (a)(b) Indexing time.
    let solutions = harness::build_all(ds);
    rep.row(
        ds.name,
        "TraSS",
        "n",
        ds.data.len() as f64,
        &[("index_ms", solutions.trass_build.as_secs_f64() * 1e3)],
    );
    for engine in &solutions.baselines {
        rep.row(
            ds.name,
            engine.name(),
            "n",
            ds.data.len() as f64,
            &[("index_ms", engine.build_time().as_secs_f64() * 1e3)],
        );
    }

    // (c) Rowkey storage overhead: integer vs string encoding.
    let (int_avg, str_avg, reduction) = rowkey_overhead(ds);
    rep.row(ds.name, "TraSS", "n", ds.data.len() as f64, &[("rowkey_bytes", int_avg)]);
    rep.row(
        ds.name,
        "TraSS-S",
        "n",
        ds.data.len() as f64,
        &[("rowkey_bytes", str_avg), ("reduction_pct", reduction)],
    );
}

/// Average rowkey sizes `(integer, string, reduction %)` over a dataset.
///
/// Uses the whole-earth space exactly as the paper's deployment does —
/// rowkey lengths depend on absolute quadrant-sequence depth, which an
/// extent-scoped space would shorten artificially.
pub fn rowkey_overhead(ds: &Dataset) -> (f64, f64, f64) {
    let space = trass_geo::WORLD_SQUARE;
    let index = XzStar::new(16);
    let mut int_bytes = 0usize;
    let mut str_bytes = 0usize;
    for t in &ds.data {
        let unit: Vec<_> = t.points().iter().map(|p| space.to_unit(p)).collect();
        let s = index.index_points(&unit);
        int_bytes += rowkey(0, index.encode(&s), t.id).len();
        str_bytes += string_rowkey(0, &s, t.id).len();
    }
    let n = ds.data.len() as f64;
    let int_avg = int_bytes as f64 / n;
    let str_avg = str_bytes as f64 / n;
    (int_avg, str_avg, (str_avg - int_avg) / str_avg * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_encoding_reduces_rowkey_bytes_substantially() {
        // Fig. 13(c): the paper reports 32 % (T-Drive) and 27 % (Lorry).
        // Our city-scale taxi twin lands in the same regime; the lorry twin
        // spans all of China (shallow sequences — see EXPERIMENTS.md), so
        // its saving is smaller but must never be negative enough to make
        // string keys preferable on average across datasets.
        std::env::set_var("TRASS_REPRO_SCALE", "0.2");
        let tdrive = datasets::tdrive();
        let (int_avg, str_avg, reduction) = rowkey_overhead(&tdrive);
        assert!(int_avg < str_avg);
        assert!(
            reduction > 15.0 && reduction < 60.0,
            "T-Drive: reduction {reduction:.1}% (int {int_avg:.1}B, str {str_avg:.1}B)"
        );
        let lorry = datasets::lorry();
        let (_, _, lorry_reduction) = rowkey_overhead(&lorry);
        assert!(
            lorry_reduction > -15.0,
            "Lorry: reduction {lorry_reduction:.1}% unreasonably negative"
        );
        std::env::remove_var("TRASS_REPRO_SCALE");
    }
}
