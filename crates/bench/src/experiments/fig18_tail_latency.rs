//! Fig. 18 — tail latency: the 99th percentile of per-query time for both
//! query types, per solution. Percentiles come from the shared
//! `trass_obs::Histogram` (≤ 1/32 quantization), the same structure the
//! live metrics endpoint serves; p999 is reported alongside the paper's
//! p99.

use crate::datasets::{self, Dataset};
use crate::harness;
use crate::report::Reporter;
use trass_traj::Measure;

/// Runs the experiment.
pub fn run() {
    let mut rep = Reporter::new("fig18");
    for ds in [datasets::tdrive(), datasets::lorry()] {
        run_dataset(&ds, &mut rep);
    }
    let path = rep.finish();
    println!("fig18 rows appended to {}", path.display());
}

fn run_dataset(ds: &Dataset, rep: &mut Reporter) {
    let queries = datasets::queries(ds, datasets::n_queries());
    let solutions = harness::build_all(ds);

    let th = harness::run_trass_threshold(&solutions.trass, &queries, 0.01, Measure::Frechet);
    let tk = harness::run_trass_topk(&solutions.trass, &queries, 50, Measure::Frechet);
    rep.row(
        ds.name,
        "TraSS",
        "p",
        99.0,
        &[
            ("threshold_p99_ms", th.p99_time.as_secs_f64() * 1e3),
            ("threshold_p999_ms", th.p999_time.as_secs_f64() * 1e3),
            ("topk_p99_ms", tk.p99_time.as_secs_f64() * 1e3),
            ("topk_p999_ms", tk.p999_time.as_secs_f64() * 1e3),
            // Refine-stage medians and lower-bound prune volume: the
            // numbers TRASS_REFINE_BOUNDS moves (tails above include every
            // stage, so the refine effect is diluted there).
            ("threshold_refine_p50_ms", th.median_refine_time.as_secs_f64() * 1e3),
            ("topk_refine_p50_ms", tk.median_refine_time.as_secs_f64() * 1e3),
            ("topk_refine_pruned_mean", tk.mean_refine_pruned),
        ],
    );
    for engine in &solutions.baselines {
        let th = harness::run_engine_threshold(engine.as_ref(), &queries, 0.01, Measure::Frechet);
        let tk = harness::run_engine_topk(engine.as_ref(), &queries, 50, Measure::Frechet);
        let mut metrics: Vec<(&str, f64)> = Vec::new();
        if let Some(th) = &th {
            metrics.push(("threshold_p99_ms", th.p99_time.as_secs_f64() * 1e3));
            metrics.push(("threshold_p999_ms", th.p999_time.as_secs_f64() * 1e3));
        }
        if let Some(tk) = &tk {
            metrics.push(("topk_p99_ms", tk.p99_time.as_secs_f64() * 1e3));
            metrics.push(("topk_p999_ms", tk.p999_time.as_secs_f64() * 1e3));
        }
        if !metrics.is_empty() {
            rep.row(ds.name, engine.name(), "p", 99.0, &metrics);
        }
    }
}
