//! Fig. 19 — effect of the shard count ∈ {1 … 32}: query time and the
//! skew the shards exist to cure (§IV-E's hot-spotting discussion).

use crate::datasets;
use crate::harness;
use crate::report::Reporter;
use trass_traj::Measure;

/// The shard sweep of §VI-E.
pub const SHARD_SWEEP: [u8; 6] = [1, 2, 4, 8, 16, 32];

/// Runs the experiment.
pub fn run() {
    let mut rep = Reporter::new("fig19");
    let ds = datasets::tdrive();
    let queries = datasets::queries(&ds, (datasets::n_queries() / 2).max(5));
    for shards in SHARD_SWEEP {
        let (store, build) = harness::build_trass(&ds, 16, shards);
        let th = harness::run_trass_threshold(&store, &queries, 0.01, Measure::Frechet);
        let tk = harness::run_trass_topk(&store, &queries, 50, Measure::Frechet);
        // Skew: max region row count over the mean (1.0 = perfectly even).
        let counts = store.cluster().region_entry_counts();
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        let skew = counts.iter().copied().max().unwrap_or(0) as f64 / mean.max(1.0);
        rep.row(
            ds.name,
            "TraSS",
            "shards",
            shards as f64,
            &[
                ("threshold_ms", th.median_time.as_secs_f64() * 1e3),
                ("topk_ms", tk.median_time.as_secs_f64() * 1e3),
                ("index_ms", build.as_secs_f64() * 1e3),
                ("skew", skew),
                ("ranges", th.mean_retrieved), // extra context for the report
            ],
        );
    }
    let path = rep.finish();
    println!("fig19 rows appended to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_shards_reduce_skew() {
        std::env::remove_var("TRASS_REPRO_SCALE");
        let ds = datasets::tdrive();
        let (s1, _) = harness::build_trass(&ds, 16, 1);
        let (s8, _) = harness::build_trass(&ds, 16, 8);
        let skew = |store: &trass_core::TrajectoryStore| {
            let counts = store.cluster().region_entry_counts();
            let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
            counts.iter().copied().max().unwrap_or(0) as f64 / mean.max(1.0)
        };
        // One shard is trivially "even" (one region); with 8 shards the
        // hash keeps the spread tight.
        assert_eq!(skew(&s1), 1.0);
        assert!(skew(&s8) < 1.25, "8-shard skew {}", skew(&s8));
    }
}
