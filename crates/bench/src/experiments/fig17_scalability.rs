//! Fig. 17 — scalability on the synthetic ×t datasets: indexing time (a),
//! threshold query time (b), top-k query time (c), as data size grows.

use crate::datasets;
use crate::harness;
use crate::report::Reporter;
use trass_baselines::xz_kv::XzKvEngine;
use trass_baselines::SimilarityEngine;
use trass_traj::Measure;

/// The ×t sweep (the paper copies the Lorry dataset 1–5 times).
pub const T_SWEEP: [usize; 5] = [1, 2, 3, 4, 5];

/// Runs the experiment.
pub fn run() {
    let mut rep = Reporter::new("fig17");
    for t in T_SWEEP {
        let ds = datasets::synthetic(t);
        let queries = datasets::queries(&ds, (datasets::n_queries() / 2).max(5));

        let (store, build) = harness::build_trass(&ds, 16, 8);
        let th = harness::run_trass_threshold(&store, &queries, 0.01, Measure::Frechet);
        let tk = harness::run_trass_topk(&store, &queries, 50, Measure::Frechet);
        rep.row(
            "Synthetic",
            "TraSS",
            "t",
            t as f64,
            &[
                ("index_ms", build.as_secs_f64() * 1e3),
                ("threshold_ms", th.median_time.as_secs_f64() * 1e3),
                ("topk_ms", tk.median_time.as_secs_f64() * 1e3),
            ],
        );

        // JUST is the other KV-store solution; it is the relevant
        // scalability comparator (the Spark baselines hold all data in
        // executor memory).
        let just = XzKvEngine::build(&ds.data, Default::default());
        let th = harness::run_engine_threshold(&just, &queries, 0.01, Measure::Frechet)
            .expect("JUST supports threshold");
        let tk = harness::run_engine_topk(&just, &queries, 50, Measure::Frechet)
            .expect("JUST supports top-k");
        rep.row(
            "Synthetic",
            just.name(),
            "t",
            t as f64,
            &[
                ("index_ms", just.build_time().as_secs_f64() * 1e3),
                ("threshold_ms", th.median_time.as_secs_f64() * 1e3),
                ("topk_ms", tk.median_time.as_secs_f64() * 1e3),
            ],
        );
    }
    let path = rep.finish();
    println!("fig17 rows appended to {}", path.display());
}
