//! Ablation study: which of TraSS's pruning stages buys what.
//!
//! Not a numbered figure, but the §VI-C/§VI-D discussion implies it and
//! DESIGN.md calls it out: we switch off (a) position codes (Lemmas
//! 10–11), (b) the distance bounds (Lemmas 9/11), and (c) local filtering
//! (Lemmas 12–14) one at a time and measure rows retrieved, candidates,
//! and query time at ε = 0.01 on both datasets.

use crate::datasets::{self, Dataset};
use crate::harness;
use crate::report::Reporter;
use trass_core::{config::TrassConfig, store::TrajectoryStore};
use trass_traj::Measure;

/// Runs the ablation.
pub fn run() {
    let mut rep = Reporter::new("ablation");
    for ds in [datasets::tdrive(), datasets::lorry()] {
        run_dataset(&ds, &mut rep);
    }
    let path = rep.finish();
    println!("ablation rows appended to {}", path.display());
}

type Variant = (&'static str, fn(&mut TrassConfig));

fn variants() -> Vec<Variant> {
    vec![
        ("full", |_| {}),
        ("no-position-codes", |c| c.use_position_codes = false),
        ("no-min-dist", |c| c.use_min_dist = false),
        ("no-local-filter", |c| c.use_local_filter = false),
        ("elements-only", |c| {
            c.use_position_codes = false;
            c.use_min_dist = false;
            c.use_local_filter = false;
        }),
    ]
}

fn run_dataset(ds: &Dataset, rep: &mut Reporter) {
    let queries = datasets::queries(ds, datasets::n_queries());
    for (name, tweak) in variants() {
        let mut cfg = TrassConfig { space: trass_geo::WORLD_SQUARE, ..TrassConfig::default() };
        tweak(&mut cfg);
        let store = TrajectoryStore::open(cfg).expect("open");
        store.insert_all(&ds.data).expect("insert");
        store.flush().expect("flush");
        let agg = harness::run_trass_threshold(&store, &queries, 0.01, Measure::Frechet);
        rep.row(
            ds.name,
            name,
            "eps",
            0.01,
            &[
                ("time_ms", agg.median_time.as_secs_f64() * 1e3),
                ("retrieved", agg.mean_retrieved),
                ("candidates", agg.mean_candidates),
                ("results", agg.mean_results),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trass_core::query;

    #[test]
    fn ablations_do_not_change_answers() {
        // Every ablation must stay *correct* — the lemmas only prune, never
        // decide. Answers across variants must be identical.
        std::env::set_var("TRASS_REPRO_SCALE", "0.05");
        let ds = datasets::tdrive();
        let queries = datasets::queries(&ds, 3);
        let mut reference: Option<Vec<Vec<u64>>> = None;
        for (name, tweak) in variants() {
            let mut cfg = TrassConfig { space: trass_geo::WORLD_SQUARE, ..TrassConfig::default() };
            tweak(&mut cfg);
            let store = TrajectoryStore::open(cfg).unwrap();
            store.insert_all(&ds.data).unwrap();
            store.flush().unwrap();
            let answers: Vec<Vec<u64>> = queries
                .iter()
                .map(|q| {
                    query::threshold_search(&store, q, 0.01, Measure::Frechet)
                        .unwrap()
                        .results
                        .iter()
                        .map(|&(id, _)| id)
                        .collect()
                })
                .collect();
            match &reference {
                None => reference = Some(answers),
                Some(r) => assert_eq!(&answers, r, "variant {name} changed the answers"),
            }
        }
        std::env::remove_var("TRASS_REPRO_SCALE");
    }

    #[test]
    fn disabling_stages_increases_work() {
        std::env::set_var("TRASS_REPRO_SCALE", "0.1");
        let ds = datasets::tdrive();
        let queries = datasets::queries(&ds, 5);
        let measure = |tweak: fn(&mut TrassConfig)| {
            let mut cfg = TrassConfig { space: trass_geo::WORLD_SQUARE, ..TrassConfig::default() };
            tweak(&mut cfg);
            let store = TrajectoryStore::open(cfg).unwrap();
            store.insert_all(&ds.data).unwrap();
            store.flush().unwrap();
            let agg = harness::run_trass_threshold(&store, &queries, 0.01, Measure::Frechet);
            (agg.mean_retrieved, agg.mean_candidates)
        };
        let (full_retrieved, full_candidates) = measure(|_| {});
        let (nopc_retrieved, _) = measure(|c| c.use_position_codes = false);
        let (_, nolf_candidates) = measure(|c| c.use_local_filter = false);
        assert!(
            nopc_retrieved >= full_retrieved,
            "position codes should reduce rows: {nopc_retrieved} vs {full_retrieved}"
        );
        assert!(
            nolf_candidates >= full_candidates,
            "local filter should reduce candidates: {nolf_candidates} vs {full_candidates}"
        );
        std::env::remove_var("TRASS_REPRO_SCALE");
    }
}
