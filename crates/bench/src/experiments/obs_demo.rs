//! Observability demo — not a paper figure.
//!
//! Drives a Gaussian hotspot workload through the full query pipeline and
//! dumps everything the observability subsystem collects: the Prometheus
//! text exposition (`results/obs.prom`), the JSON snapshot
//! (`results/obs.json`), and the slow-query log. This is the end-to-end
//! check that stage histograms, per-shard scan counters and the KV-internal
//! counters (compaction, cache, bloom) all flow to one scrapeable surface.

use crate::datasets::{self, Dataset};
use crate::harness;
use std::io::Write;
use std::path::PathBuf;
use trass_core::query;
use trass_core::store::TrajectoryStore;
use trass_geo::Mbr;
use trass_traj::Measure;

/// Builds TraSS over `ds` and exercises every query kind so the registry
/// holds a representative set of series. Returns the live store; callers
/// render its registry.
pub fn collect(ds: &Dataset, n_queries: usize) -> TrajectoryStore {
    let (store, _build) = harness::build_trass(ds, 16, 8);
    let queries = datasets::queries(ds, n_queries);
    for q in &queries {
        query::threshold_search(&store, q, 0.01, Measure::Frechet).expect("threshold");
    }
    if let Some(q) = queries.first() {
        query::top_k_search(&store, q, 10, Measure::Frechet).expect("topk");
        let m = q.mbr();
        let window = Mbr::new(m.min_x - 0.01, m.min_y - 0.01, m.max_x + 0.01, m.max_y + 0.01);
        query::range_search(&store, &window).expect("range");
    }
    store
}

/// Runs the demo.
pub fn run() {
    let ds = datasets::gaussian();
    let store = collect(&ds, datasets::n_queries());

    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let prom = store.render_prometheus();
    let json = store.render_json();
    std::fs::File::create(dir.join("obs.prom"))
        .and_then(|mut f| f.write_all(prom.as_bytes()))
        .expect("write obs.prom");
    std::fs::File::create(dir.join("obs.json"))
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write obs.json");

    println!("\n== obs ==");
    println!("{} Prometheus lines -> {}", prom.lines().count(), dir.join("obs.prom").display());
    println!("JSON snapshot      -> {}", dir.join("obs.json").display());
    println!("\nslowest queries (top {}):", store.slow_queries().len());
    for rec in store.slow_queries() {
        println!(
            "  {:>9.3} ms  {:<9}  {}",
            rec.stats.total_time().as_secs_f64() * 1e3,
            rec.kind,
            rec.detail
        );
    }
}

/// Runs the demo workload and then stays up behind the embedded telemetry
/// endpoint (`repro obs --serve`): prints the bound address and keeps a
/// light query loop going so scrapes of `/metrics`, `/healthz` and friends
/// see live numbers. Runs until killed — CI's endpoint smoke job starts it
/// in the background, curls the endpoint, and tears it down.
pub fn serve() {
    let ds = datasets::gaussian();
    let store = collect(&ds, datasets::n_queries());
    let telemetry = store.serve_telemetry().expect("bind telemetry endpoint");
    // Single parseable line first (CI greps for it), then the route list.
    println!("telemetry listening on http://{}", telemetry.local_addr());
    println!("routes: /metrics /metrics.json /traces /slowlog /vars/history /healthz /readyz");
    println!("serving until killed (Ctrl-C)");
    std::io::stdout().flush().expect("flush stdout");

    let queries = datasets::queries(&ds, 4);
    loop {
        for q in &queries {
            query::threshold_search(&store, q, 0.01, Measure::Frechet).expect("threshold");
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trass_traj::generator;

    #[test]
    fn demo_renders_every_metric_family() {
        let ds = Dataset {
            name: "Gaussian",
            data: generator::gaussian_like(44, 150),
            extent: generator::BEIJING,
        };
        let store = collect(&ds, 3);
        let prom = store.render_prometheus();
        // Stage histograms with full Prometheus histogram series.
        assert!(
            prom.contains("trass_query_stage_seconds_bucket{measure=\"frechet\",stage=\"scan\""),
            "missing scan stage bucket in:\n{prom}"
        );
        assert!(prom.contains("trass_query_stage_seconds_sum{measure=\"frechet\",stage=\"scan\"}"));
        assert!(
            prom.contains("trass_query_stage_seconds_count{measure=\"frechet\",stage=\"scan\"}")
        );
        for stage in ["pruning", "scan", "local-filter", "refine"] {
            assert!(prom.contains(&format!("stage=\"{stage}\"")), "missing stage {stage}");
        }
        // Per-shard scan fan-out and KV internals.
        assert!(prom.contains("trass_kv_region_scans{shard=\"0\"}"));
        assert!(prom.contains("trass_kv_region_scan_seconds_count{shard=\"0\"}"));
        assert!(prom.contains("trass_kv_compactions{shard=\"0\"}"));
        assert!(prom.contains("trass_kv_cache_hits{shard=\"0\"}"));
        assert!(prom.contains("trass_kv_cache_misses{shard=\"0\"}"));
        assert!(prom.contains("trass_kv_bloom_probes{shard=\"0\"}"));
        assert!(prom.contains("trass_kv_flushes{shard=\"0\"}"));
        // Every query kind was recorded.
        for kind in ["threshold", "topk", "range"] {
            assert!(prom.contains(&format!("trass_queries{{kind=\"{kind}\"}}")), "{kind}");
        }
        // The JSON exporter serves the same registry.
        let json = store.render_json();
        assert!(json.contains("trass_query_stage_seconds"));
        assert!(json.contains("trass_kv_region_scans"));
        // Slow-query log captured the workload.
        assert!(store.slow_queries().len() >= 3);
    }
}
