//! Observability demo — not a paper figure.
//!
//! Drives a Gaussian hotspot workload through the full query pipeline and
//! dumps everything the observability subsystem collects: the Prometheus
//! text exposition (`results/obs.prom`), the JSON snapshot
//! (`results/obs.json`), and the slow-query log. This is the end-to-end
//! check that stage histograms, per-shard scan counters and the KV-internal
//! counters (compaction, cache, bloom) all flow to one scrapeable surface.

use crate::datasets::{self, Dataset};
use crate::harness;
use std::io::Write;
use std::path::PathBuf;
use trass_core::query;
use trass_core::store::TrajectoryStore;
use trass_geo::Mbr;
use trass_traj::Measure;

/// Builds TraSS over `ds` and exercises every query kind so the registry
/// holds a representative set of series. Returns the live store; callers
/// render its registry.
pub fn collect(ds: &Dataset, n_queries: usize) -> TrajectoryStore {
    let (store, _build) = harness::build_trass(ds, 16, 8);
    let queries = datasets::queries(ds, n_queries);
    for q in &queries {
        query::threshold_search(&store, q, 0.01, Measure::Frechet).expect("threshold");
    }
    if let Some(q) = queries.first() {
        query::top_k_search(&store, q, 10, Measure::Frechet).expect("topk");
        let m = q.mbr();
        let window = Mbr::new(m.min_x - 0.01, m.min_y - 0.01, m.max_x + 0.01, m.max_y + 0.01);
        query::range_search(&store, &window).expect("range");
    }
    store
}

/// Runs the demo.
pub fn run() {
    let ds = datasets::gaussian();
    let store = collect(&ds, datasets::n_queries());

    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let prom = store.render_prometheus();
    let json = store.render_json();
    std::fs::File::create(dir.join("obs.prom"))
        .and_then(|mut f| f.write_all(prom.as_bytes()))
        .expect("write obs.prom");
    std::fs::File::create(dir.join("obs.json"))
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write obs.json");

    println!("\n== obs ==");
    println!("{} Prometheus lines -> {}", prom.lines().count(), dir.join("obs.prom").display());
    println!("JSON snapshot      -> {}", dir.join("obs.json").display());
    println!("\nslowest queries (top {}):", store.slow_queries().len());
    for rec in store.slow_queries() {
        println!(
            "  {:>9.3} ms  {:<9}  {}",
            rec.stats.total_time().as_secs_f64() * 1e3,
            rec.kind,
            rec.detail
        );
    }
}

/// Continuous-profiling demo (`repro profile`): runs the demo workload and
/// prints the flight recorder folded into collapsed-stack format under all
/// three weights (wall / alloc / cpu). The same folding backs the
/// telemetry endpoint's `/profile` route; the files written here feed
/// straight into `inferno-flamegraph` / speedscope.
pub fn profile() {
    let ds = datasets::gaussian();
    let store = collect(&ds, datasets::n_queries());
    // The sampler traces 1-in-N queries; explain one threshold query so
    // the flight recorder is never empty even for tiny query batches.
    let q = datasets::queries(&ds, 1);
    if let Some(q) = q.first() {
        store
            .explain(trass_core::store::ExplainQuery::Threshold {
                query: q,
                eps: 0.01,
                measure: Measure::Frechet,
            })
            .expect("explain");
    }

    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    println!("\n== profile ==");
    println!("{} traces in the flight recorder", store.flight_recorder().len());
    for weight in ["wall", "alloc", "cpu"] {
        let w = trass_obs::ProfileWeight::parse(weight).expect("known weight");
        let folded = trass_obs::profile::render_flight(store.flight_recorder(), w);
        let path = dir.join(format!("profile_{weight}.folded"));
        std::fs::write(&path, &folded).expect("write folded profile");
        println!(
            "\n{} collapsed stacks ({} lines) -> {}",
            weight,
            folded.lines().count(),
            path.display()
        );
        print!("{folded}");
    }
}

/// Workload-analytics demo (`repro workload`): runs the demo workload and
/// prints the per-fingerprint summary — one row per normalised query
/// shape with counts, latency percentiles, scan volume, and prune ratio.
/// The same summary backs the telemetry endpoint's `/workload` route.
pub fn workload() {
    let ds = datasets::gaussian();
    let store = collect(&ds, datasets::n_queries());

    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let json = store.workload().render_json();
    std::fs::write(dir.join("workload.json"), &json).expect("write workload.json");

    println!("\n== workload ==");
    print!("{}", store.workload().render_text());
    println!("\nJSON -> {}", dir.join("workload.json").display());
}

/// Runs the demo workload and then stays up behind the embedded telemetry
/// endpoint (`repro obs --serve`): prints the bound address and keeps a
/// light query loop going so scrapes of `/metrics`, `/healthz` and friends
/// see live numbers. Runs until killed — CI's endpoint smoke job starts it
/// in the background, curls the endpoint, and tears it down.
pub fn serve() {
    let ds = datasets::gaussian();
    let store = collect(&ds, datasets::n_queries());
    let telemetry = store.serve_telemetry().expect("bind telemetry endpoint");
    // Single parseable line first (CI greps for it), then the route list.
    println!("telemetry listening on http://{}", telemetry.local_addr());
    println!(
        "routes: /metrics /metrics.json /traces /slowlog /profile /workload \
         /vars/history /healthz /readyz"
    );
    println!("serving until killed (Ctrl-C)");
    std::io::stdout().flush().expect("flush stdout");

    let queries = datasets::queries(&ds, 4);
    loop {
        for q in &queries {
            query::threshold_search(&store, q, 0.01, Measure::Frechet).expect("threshold");
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trass_traj::generator;

    #[test]
    fn demo_renders_every_metric_family() {
        let ds = Dataset {
            name: "Gaussian",
            data: generator::gaussian_like(44, 150),
            extent: generator::BEIJING,
        };
        let store = collect(&ds, 3);
        let prom = store.render_prometheus();
        // Stage histograms with full Prometheus histogram series.
        assert!(
            prom.contains("trass_query_stage_seconds_bucket{measure=\"frechet\",stage=\"scan\""),
            "missing scan stage bucket in:\n{prom}"
        );
        assert!(prom.contains("trass_query_stage_seconds_sum{measure=\"frechet\",stage=\"scan\"}"));
        assert!(
            prom.contains("trass_query_stage_seconds_count{measure=\"frechet\",stage=\"scan\"}")
        );
        for stage in ["pruning", "scan", "local-filter", "refine"] {
            assert!(prom.contains(&format!("stage=\"{stage}\"")), "missing stage {stage}");
        }
        // Per-shard scan fan-out and KV internals.
        assert!(prom.contains("trass_kv_region_scans{shard=\"0\"}"));
        assert!(prom.contains("trass_kv_region_scan_seconds_count{shard=\"0\"}"));
        assert!(prom.contains("trass_kv_compactions{shard=\"0\"}"));
        assert!(prom.contains("trass_kv_cache_hits{shard=\"0\"}"));
        assert!(prom.contains("trass_kv_cache_misses{shard=\"0\"}"));
        assert!(prom.contains("trass_kv_bloom_probes{shard=\"0\"}"));
        assert!(prom.contains("trass_kv_flushes{shard=\"0\"}"));
        // Every query kind was recorded.
        for kind in ["threshold", "topk", "range"] {
            assert!(prom.contains(&format!("trass_queries{{kind=\"{kind}\"}}")), "{kind}");
        }
        // The JSON exporter serves the same registry.
        let json = store.render_json();
        assert!(json.contains("trass_query_stage_seconds"));
        assert!(json.contains("trass_kv_region_scans"));
        // Slow-query log captured the workload.
        assert!(store.slow_queries().len() >= 3);
    }

    #[test]
    fn demo_workload_aggregates_distinct_fingerprints() {
        let ds = Dataset {
            name: "Gaussian",
            data: generator::gaussian_like(45, 120),
            extent: generator::BEIJING,
        };
        let store = collect(&ds, 3);
        // Threshold, top-k and range queries ran: at least two distinct
        // shapes must aggregate separately.
        assert!(store.workload().len() >= 2, "{}", store.workload().render_text());
        let json = store.workload().render_json();
        assert!(json.contains("threshold|frechet"), "missing threshold shape: {json}");
        assert!(json.contains("topk|frechet"), "missing topk shape: {json}");
        // Folding the flight recorder under every weight never panics and
        // wall folding is non-empty whenever a trace was sampled.
        for w in [
            trass_obs::ProfileWeight::Wall,
            trass_obs::ProfileWeight::Alloc,
            trass_obs::ProfileWeight::Cpu,
        ] {
            let _ = trass_obs::profile::render_flight(store.flight_recorder(), w);
        }
    }
}
