//! One module per paper artifact. Each `run()` prints the figure's table
//! and appends JSONL rows under `results/`.

pub mod ablation;
pub mod bench_gate;
pub mod explain_demo;
pub mod fig09_threshold;
pub mod fig10_topk;
pub mod fig11_pruning;
pub mod fig12_distribution;
pub mod fig13_overhead;
pub mod fig14_resolution;
pub mod fig17_scalability;
pub mod fig18_tail_latency;
pub mod fig19_shards;
pub mod fig20_measures;
pub mod io_reduction;
pub mod loadtest;
pub mod obs_demo;

/// Runs every experiment in figure order.
pub fn run_all() {
    fig09_threshold::run();
    fig10_topk::run();
    fig11_pruning::run();
    fig12_distribution::run();
    fig13_overhead::run();
    fig14_resolution::run();
    fig17_scalability::run();
    fig18_tail_latency::run();
    fig19_shards::run();
    fig20_measures::run();
    io_reduction::run();
    ablation::run();
    obs_demo::run();
    explain_demo::run();
}
