//! Fig. 9 — threshold similarity search: query time (a) and number of
//! candidates after pruning (b), varying ε ∈ {0.001 … 0.02} on T-Drive and
//! Lorry, for TraSS vs DFT / DITA / JUST.

use crate::datasets::{self, Dataset};
use crate::harness;
use crate::report::Reporter;
use trass_traj::Measure;

/// The ε sweep of §VI-A.
pub const EPS_SWEEP: [f64; 5] = [0.001, 0.005, 0.01, 0.015, 0.02];

/// Runs the experiment.
pub fn run() {
    let mut rep = Reporter::new("fig9");
    for ds in [datasets::tdrive(), datasets::lorry()] {
        run_dataset(&ds, &mut rep);
    }
    let path = rep.finish();
    println!("fig9 rows appended to {}", path.display());
}

fn run_dataset(ds: &Dataset, rep: &mut Reporter) {
    let queries = datasets::queries(ds, datasets::n_queries());
    let solutions = harness::build_all(ds);
    for eps in EPS_SWEEP {
        let agg = harness::run_trass_threshold(&solutions.trass, &queries, eps, Measure::Frechet);
        rep.row(
            ds.name,
            "TraSS",
            "eps",
            eps,
            &[
                ("time_ms", agg.median_time.as_secs_f64() * 1e3),
                ("candidates", agg.mean_candidates),
                ("retrieved", agg.mean_retrieved),
                ("results", agg.mean_results),
            ],
        );
        for engine in &solutions.baselines {
            if let Some(agg) =
                harness::run_engine_threshold(engine.as_ref(), &queries, eps, Measure::Frechet)
            {
                rep.row(
                    ds.name,
                    engine.name(),
                    "eps",
                    eps,
                    &[
                        ("time_ms", agg.median_time.as_secs_f64() * 1e3),
                        ("candidates", agg.mean_candidates),
                        ("retrieved", agg.mean_retrieved),
                        ("results", agg.mean_results),
                    ],
                );
            }
        }
    }
}
