//! The I/O-reduction claims: §IV-B's theoretical 83.6 % average and
//! §VI / abstract's measured "up to 66.4 % less I/O than XZ-Ordering".
//!
//! * **Theory**: enumerates the 14 far-quad configurations and their
//!   surviving position codes — the exact table of §IV-B's Discussion.
//! * **Measured**: runs the same query batch through TraSS (XZ\*) and the
//!   JUST engine (XZ-Ordering) on identical KV clusters and compares rows
//!   scanned.

use crate::datasets;
use crate::harness;
use crate::report::Reporter;
use trass_baselines::xz_kv::{XzKvConfig, XzKvEngine};
use trass_baselines::SimilarityEngine;
use trass_index::xzstar::{io_reduction, QuadSet};
use trass_traj::Measure;

/// Runs the experiment.
pub fn run() {
    theory();
    measured();
}

/// §IV-B's theoretical table.
pub fn theory() {
    let mut rep = Reporter::new("io_theory");
    let names = ["a", "b", "c", "d"];
    let mut total = 0.0;
    let mut count = 0u32;
    for mask in 1u8..15 {
        let set = QuadSet(mask);
        let label: String = (0..4).filter(|i| mask >> i & 1 == 1).map(|i| names[i]).collect();
        let quads = (0..4).filter(|i| mask >> i & 1 == 1).count();
        if quads == 4 {
            continue;
        }
        let reduction = io_reduction(set);
        total += reduction;
        count += 1;
        rep.row(
            "theory",
            "XZ*",
            &format!("far-{label}"),
            quads as f64,
            &[("reduction_pct", reduction * 100.0)],
        );
    }
    rep.row("theory", "XZ*", "average", 0.0, &[("reduction_pct", total / count as f64 * 100.0)]);
    let path = rep.finish();
    println!("io_theory rows appended to {}", path.display());
}

/// Measured rows-scanned comparison, TraSS vs XZ-Ordering.
pub fn measured() {
    let mut rep = Reporter::new("io_measured");
    for ds in [datasets::tdrive(), datasets::lorry()] {
        let queries = datasets::queries(&ds, datasets::n_queries());
        let (trass, _) = harness::build_trass(&ds, 16, 8);
        let just = XzKvEngine::build(&ds.data, XzKvConfig::default());
        for eps in [0.001, 0.005, 0.01, 0.02] {
            let t = harness::run_trass_threshold(&trass, &queries, eps, Measure::Frechet);
            let j = harness::run_engine_threshold(&just, &queries, eps, Measure::Frechet)
                .expect("JUST supports threshold");
            let reduction = if j.mean_retrieved > 0.0 {
                (j.mean_retrieved - t.mean_retrieved) / j.mean_retrieved * 100.0
            } else {
                0.0
            };
            rep.row(
                ds.name,
                "TraSS-vs-XZ2",
                "eps",
                eps,
                &[
                    // report column name, not a registry metric: trass-lint: allow(drift)
                    ("trass_rows", t.mean_retrieved),
                    ("xz2_rows", j.mean_retrieved),
                    ("reduction_pct", reduction),
                ],
            );
        }
        let _ = just.name();
    }
    let path = rep.finish();
    println!("io_measured rows appended to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theoretical_average_is_83_6() {
        let mut total = 0.0;
        let mut count = 0;
        for mask in 1u8..15 {
            let quads = (0..4).filter(|i| mask >> i & 1 == 1).count();
            if (1..=3).contains(&quads) {
                total += io_reduction(QuadSet(mask));
                count += 1;
            }
        }
        let avg = total / count as f64 * 100.0;
        assert!((avg - 83.6).abs() < 0.1, "avg = {avg}");
    }

    #[test]
    fn xzstar_scans_fewer_rows_than_xz2() {
        // The measured half of the claim, on a small workload.
        std::env::set_var("TRASS_REPRO_SCALE", "0.2");
        let ds = datasets::tdrive();
        let queries = datasets::queries(&ds, 10);
        let (trass, _) = harness::build_trass(&ds, 16, 8);
        let just = XzKvEngine::build(&ds.data, XzKvConfig::default());
        let t = harness::run_trass_threshold(&trass, &queries, 0.005, Measure::Frechet);
        let j = harness::run_engine_threshold(&just, &queries, 0.005, Measure::Frechet).unwrap();
        assert!(
            t.mean_retrieved < j.mean_retrieved,
            "TraSS {} rows vs XZ2 {} rows",
            t.mean_retrieved,
            j.mean_retrieved
        );
        std::env::remove_var("TRASS_REPRO_SCALE");
    }
}
