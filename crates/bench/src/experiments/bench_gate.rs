//! The CI perf-regression gate (`repro bench`).
//!
//! Runs two pinned workloads — threshold search and top-k search over a
//! fixed-seed T-Drive-like dataset — once sequentially (`query_threads =
//! 1`) and once at the gate's thread budget (4), writes the numbers to
//! `BENCH_ci.json`, and fails (exit 1) when a workload's parallel p50
//! regressed more than the tolerance against the checked-in
//! `bench/baseline.json`.
//!
//! Knobs:
//!
//! * `--quick` shrinks the dataset and query batch to CI size.
//! * `--update-baseline` rewrites `bench/baseline.json` from this run
//!   instead of gating (use after intentional perf changes, on the same
//!   class of machine CI uses).
//! * `TRASS_BENCH_TOLERANCE` overrides the allowed fractional regression
//!   (default `0.25`, i.e. fail past +25 %).
//!
//! The gate compares wall-clock medians, so the baseline is only
//! meaningful on comparable hardware; refresh it with `--update-baseline`
//! whenever the CI runner class or an intentional perf change lands. The
//! baseline records the core count of the host that produced it; when the
//! current host's core count differs, regressions are reported as
//! warnings instead of failing the gate (medians from differently-sized
//! machines are not comparable).
//! The JSON here is written and parsed by hand: the gate's file format is
//! a deliberately flat `"key": number` map so the comparison logic cannot
//! drift from what the artifact holds.

use crate::harness;
use std::time::Duration;
use trass_core::config::TrassConfig;
use trass_core::store::TrajectoryStore;
use trass_traj::{Measure, Trajectory};

/// Where the gate reads its reference numbers.
pub const BASELINE_PATH: &str = "bench/baseline.json";
/// Where the gate writes this run's numbers (uploaded as a CI artifact).
pub const OUTPUT_PATH: &str = "BENCH_ci.json";
/// Allowed fractional p50 regression before the gate fails.
pub const DEFAULT_TOLERANCE: f64 = 0.25;
/// Thread budget of the parallel (gated) runs.
pub const GATE_THREADS: usize = 4;

/// Fixed dataset seed — the workloads are pinned, independent of
/// `TRASS_REPRO_SCALE` / `TRASS_REPRO_QUERIES`.
const SEED: u64 = 4242;

/// One workload's measured numbers.
#[derive(Debug, Clone)]
pub struct GateResult {
    /// Workload name (`"threshold"` / `"topk"`).
    pub name: &'static str,
    /// Median query time at [`GATE_THREADS`] — the gated number.
    pub p50: Duration,
    /// p99 query time at [`GATE_THREADS`].
    pub p99: Duration,
    /// Median query time at `query_threads = 1`.
    pub p50_sequential: Duration,
    /// Median refine-stage time at [`GATE_THREADS`] — reported in
    /// `BENCH_ci.json` (so refine-path changes are visible per run) but
    /// deliberately not a gated baseline key: stage medians are noisier
    /// than whole-query medians.
    pub refine_p50: Duration,
}

impl GateResult {
    /// Sequential-over-parallel median speedup.
    pub fn speedup(&self) -> f64 {
        let par = self.p50.as_secs_f64();
        if par <= 0.0 {
            return 1.0;
        }
        self.p50_sequential.as_secs_f64() / par
    }
}

/// Entry point for `repro bench`.
pub fn run(quick: bool, update_baseline: bool) {
    let (n, n_queries) = if quick { (600, 8) } else { (2_400, 24) };
    let eps = 0.01;
    let k = 10;
    println!(
        "perf gate: {n} trajectories, {n_queries} queries, eps={eps}, k={k}, \
         threads 1 vs {GATE_THREADS}{}",
        if quick { " (quick)" } else { "" }
    );

    let data = trass_traj::generator::tdrive_like(SEED, n);
    let queries = trass_traj::generator::sample_queries(&data, n_queries, SEED + 1);

    let seq = measure_all(&data, &queries, eps, k, 1);
    let par = measure_all(&data, &queries, eps, k, GATE_THREADS);
    let results: Vec<GateResult> = seq
        .into_iter()
        .zip(par)
        .map(|(s, p)| GateResult {
            name: s.0,
            p50: p.1,
            p99: p.2,
            p50_sequential: s.1,
            refine_p50: p.3,
        })
        .collect();

    for r in &results {
        println!(
            "  {:<9} p50 {:>9.3?} p99 {:>9.3?} sequential-p50 {:>9.3?} refine-p50 {:>9.3?} \
             speedup {:.2}x",
            r.name,
            r.p50,
            r.p99,
            r.p50_sequential,
            r.refine_p50,
            r.speedup()
        );
    }

    let cores = host_cores();
    let warnings = refresh_warnings(&results, cores);
    for w in &warnings {
        eprintln!("warning: {w}");
    }
    let mode = if quick { "quick" } else { "full" };
    std::fs::write(OUTPUT_PATH, render_report(&results, mode, cores, &warnings))
        .expect("write BENCH_ci.json");
    println!("wrote {OUTPUT_PATH}");

    if update_baseline {
        if let Some(dir) = std::path::Path::new(BASELINE_PATH).parent() {
            std::fs::create_dir_all(dir).expect("create bench dir");
        }
        std::fs::write(BASELINE_PATH, render_baseline(&results, cores)).expect("write baseline");
        println!("updated {BASELINE_PATH}");
        return;
    }

    let baseline = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "perf gate: no baseline at {BASELINE_PATH} ({e}); \
                 run `repro bench --update-baseline` and commit it"
            );
            std::process::exit(2);
        }
    };
    let tolerance = tolerance();
    // A baseline taken on a differently-sized host cannot gate this run:
    // parallel medians scale with the core budget. Downgrade to warnings.
    let warn_only = match baseline_host_cores(&baseline) {
        Some(base_cores) if cores > 0 && base_cores != cores => Some(base_cores),
        _ => None,
    };
    match check_against_baseline(&results, &baseline, tolerance) {
        Ok(lines) => {
            for l in lines {
                println!("  {l}");
            }
            println!("perf gate: OK (tolerance +{:.0}%)", tolerance * 100.0);
        }
        Err(failures) if warn_only.is_some() => {
            for f in failures {
                eprintln!("  WARN (not gating): {f}");
            }
            eprintln!(
                "perf gate: warn-only — baseline was taken on a {}-core host, this host \
                 has {cores}; medians are not comparable. Refresh {BASELINE_PATH} with \
                 --update-baseline on the CI runner class to re-arm the gate.",
                warn_only.unwrap_or(0)
            );
        }
        Err(failures) => {
            for f in failures {
                eprintln!("  REGRESSION: {f}");
            }
            eprintln!(
                "perf gate: FAILED (tolerance +{:.0}%; set TRASS_BENCH_TOLERANCE or refresh \
                 {BASELINE_PATH} with --update-baseline if intentional)",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}

/// Caveat lines for CI logs, emitted even when the gate passes: a pass on
/// a host narrower than the gate's thread budget, or with a parallel
/// median slower than the sequential one, says nothing about scaling —
/// the checked-in `BENCH_ci.json` from the 1-core CI runner shows exactly
/// this shape (speedups 0.59x/0.88x). The warnings sit next to the
/// numbers they qualify so nobody reads them as a parallelism result.
pub fn refresh_warnings(results: &[GateResult], host_cores: usize) -> Vec<String> {
    let mut out = Vec::new();
    if host_cores > 0 && host_cores < GATE_THREADS {
        out.push(format!(
            "host has {host_cores} core(s) for a {GATE_THREADS}-thread gate: parallel \
             medians oversubscribe the machine and speedups are meaningless; refresh \
             {BASELINE_PATH} with --update-baseline once CI moves to a multicore runner"
        ));
    }
    for r in results {
        let s = r.speedup();
        if s < 1.0 {
            out.push(format!(
                "{} parallel p50 is slower than sequential ({s:.2}x): read the gate as a \
                 wall-clock regression check only, not as evidence of scaling",
                r.name
            ));
        }
    }
    out
}

/// The core count recorded in a baseline, when present (older baselines
/// predate the field and always gate).
pub fn baseline_host_cores(baseline: &str) -> Option<usize> {
    parse_flat_numbers(baseline)
        .iter()
        .find(|(k, _)| k == "host_cores")
        .map(|&(_, v)| v as usize)
        .filter(|&c| c > 0)
}

/// The gate's regression tolerance (`TRASS_BENCH_TOLERANCE`, default 0.25).
fn tolerance() -> f64 {
    std::env::var("TRASS_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|t: &f64| t.is_finite() && *t >= 0.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

/// Runs both pinned workloads at one thread count. Returns
/// `(name, p50, p99, refine_p50)` per workload.
fn measure_all(
    data: &[Trajectory],
    queries: &[Trajectory],
    eps: f64,
    k: usize,
    threads: usize,
) -> Vec<(&'static str, Duration, Duration, Duration)> {
    let store = build_store(data, threads);
    let th = harness::run_trass_threshold(&store, queries, eps, Measure::Frechet);
    let tk = harness::run_trass_topk(&store, queries, k, Measure::Frechet);
    vec![
        ("threshold", th.median_time, th.p99_time, th.median_refine_time),
        ("topk", tk.median_time, tk.p99_time, tk.median_refine_time),
    ]
}

fn build_store(data: &[Trajectory], threads: usize) -> TrajectoryStore {
    let cfg = TrassConfig {
        query_threads: threads,
        // Sampling off: the gate measures the untraced hot path only.
        trace_sample_every: 0,
        // Coarser than the paper's 16: index traversal is single-threaded,
        // and at resolution 16 it dominates this small dataset's queries.
        // At 12 the scan and refine stages — the ones the worker pool
        // parallelizes — carry ~95 % of the time, so the gate actually
        // measures the pool.
        max_resolution: 12,
        ..TrassConfig::default()
    };
    let store = TrajectoryStore::open(cfg).expect("valid config");
    store.insert_all(data).expect("in-memory insert");
    store.flush().expect("flush");
    store
}

/// Cores available to this process (`0` when the host cannot say) —
/// recorded in the report so CI artifacts from differently-sized runners
/// are never compared as equals.
fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0)
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `BENCH_ci.json`. The caveats from [`refresh_warnings`] ride
/// along as a `warnings` array so CI artifact consumers see them without
/// digging through job logs.
fn render_report(
    results: &[GateResult],
    mode: &str,
    host_cores: usize,
    warnings: &[String],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"threads\": {GATE_THREADS},\n"));
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str("  \"warnings\": [");
    for (i, w) in warnings.iter().enumerate() {
        out.push_str(&format!(
            "\n    \"{}\"{}",
            json_escape(w),
            if i + 1 < warnings.len() { "," } else { "\n  " }
        ));
    }
    out.push_str("],\n");
    out.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"p50_sequential_ms\": {:.4}, \"refine_p50_ms\": {:.4}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.p50_sequential.as_secs_f64() * 1e3,
            r.refine_p50.as_secs_f64() * 1e3,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders `bench/baseline.json` — the flat map the gate compares against,
/// stamped with the producing host's core count so mismatched hosts gate
/// in warn-only mode.
fn render_baseline(results: &[GateResult], host_cores: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}_p50_ms\": {:.4}{}\n",
            r.name,
            r.p50.as_secs_f64() * 1e3,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("}\n");
    out
}

/// Compares measured p50s against the baseline's flat `"key": number`
/// map. `Ok` carries per-workload summary lines; `Err` carries the
/// regression messages.
pub fn check_against_baseline(
    results: &[GateResult],
    baseline: &str,
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    let base = parse_flat_numbers(baseline);
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for r in results {
        let key = format!("{}_p50_ms", r.name);
        let Some(&base_ms) = base.iter().find(|(k, _)| *k == key).map(|(_, v)| v) else {
            bad.push(format!("{key} missing from baseline — refresh with --update-baseline"));
            continue;
        };
        let got_ms = r.p50.as_secs_f64() * 1e3;
        let limit = base_ms * (1.0 + tolerance);
        let line = format!(
            "{:<9} p50 {got_ms:.3} ms vs baseline {base_ms:.3} ms (limit {limit:.3} ms)",
            r.name
        );
        if got_ms > limit {
            bad.push(line);
        } else {
            ok.push(line);
        }
    }
    if bad.is_empty() {
        Ok(ok)
    } else {
        Err(bad)
    }
}

/// Extracts every `"key": <number>` pair from a flat JSON object. The
/// baseline format is exactly that, so a full JSON parser buys nothing.
fn parse_flat_numbers(s: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(q0) = rest.find('"') {
        let after_key = &rest[q0 + 1..];
        let Some(q1) = after_key.find('"') else { break };
        let key = &after_key[..q1];
        let after = &after_key[q1 + 1..];
        let trimmed = after.trim_start();
        let Some(val) = trimmed.strip_prefix(':') else {
            // Not a key (e.g. a string value) — resume after it.
            rest = after;
            continue;
        };
        let val = val.trim_start();
        if let Some(inner) = val.strip_prefix('"') {
            // String value: skip it whole so its contents are never
            // mistaken for a key.
            let Some(q) = inner.find('"') else { break };
            rest = &inner[q + 1..];
            continue;
        }
        let end =
            val.find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c))).unwrap_or(val.len());
        if let Ok(n) = val[..end].parse::<f64>() {
            out.push((key.to_string(), n));
        }
        rest = &val[end..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &'static str, p50_ms: f64, seq_ms: f64) -> GateResult {
        GateResult {
            name,
            p50: Duration::from_secs_f64(p50_ms / 1e3),
            p99: Duration::from_secs_f64(p50_ms * 2.0 / 1e3),
            p50_sequential: Duration::from_secs_f64(seq_ms / 1e3),
            refine_p50: Duration::from_secs_f64(p50_ms * 0.5 / 1e3),
        }
    }

    #[test]
    fn parse_flat_numbers_roundtrips_baseline() {
        let results = vec![result("threshold", 1.5, 4.5), result("topk", 8.0, 12.0)];
        let rendered = render_baseline(&results, 4);
        let parsed = parse_flat_numbers(&rendered);
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].0, "host_cores");
        assert_eq!(parsed[0].1, 4.0);
        assert_eq!(parsed[1].0, "threshold_p50_ms");
        assert!((parsed[1].1 - 1.5).abs() < 1e-9);
        assert_eq!(parsed[2].0, "topk_p50_ms");
        assert!((parsed[2].1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_host_cores_reads_the_stamp() {
        let rendered = render_baseline(&[result("threshold", 1.5, 4.5)], 6);
        assert_eq!(baseline_host_cores(&rendered), Some(6));
        // Older baselines predate the field: absent means "always gate".
        assert_eq!(baseline_host_cores("{\n  \"threshold_p50_ms\": 1.0\n}\n"), None);
        // A zero stamp (host couldn't say) never downgrades the gate.
        assert_eq!(baseline_host_cores("{\n  \"host_cores\": 0\n}\n"), None);
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let results = vec![result("threshold", 1.2, 2.0)];
        let baseline = "{\n  \"threshold_p50_ms\": 1.0\n}\n";
        assert!(check_against_baseline(&results, baseline, 0.25).is_ok());
    }

    #[test]
    fn gate_fails_past_tolerance() {
        let results = vec![result("threshold", 1.3, 2.0)];
        let baseline = "{\n  \"threshold_p50_ms\": 1.0\n}\n";
        let err = check_against_baseline(&results, baseline, 0.25).unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("threshold"), "{err:?}");
    }

    #[test]
    fn gate_fails_on_missing_workload_key() {
        let results = vec![result("topk", 1.0, 1.0)];
        let baseline = "{\n  \"threshold_p50_ms\": 1.0\n}\n";
        let err = check_against_baseline(&results, baseline, 0.25).unwrap_err();
        assert!(err[0].contains("missing"), "{err:?}");
    }

    #[test]
    fn refresh_warnings_fire_on_narrow_host_and_inverted_speedup() {
        // The shape the checked-in CI artifact shows: 1 core, speedups < 1.
        let results = vec![result("threshold", 2.0, 1.2), result("topk", 8.0, 7.0)];
        let warns = refresh_warnings(&results, 1);
        assert_eq!(warns.len(), 3, "{warns:?}");
        assert!(warns[0].contains("--update-baseline"), "{warns:?}");
        assert!(warns[1].contains("threshold") && warns[1].contains("0.60x"), "{warns:?}");
        assert!(warns[2].contains("topk"), "{warns:?}");
    }

    #[test]
    fn refresh_warnings_silent_on_wide_host_with_real_speedup() {
        let results = vec![result("threshold", 2.0, 6.0)];
        assert!(refresh_warnings(&results, GATE_THREADS).is_empty());
        // Unknown core count (0) must not warn about width either.
        assert!(refresh_warnings(&results, 0).is_empty());
    }

    #[test]
    fn speedup_is_sequential_over_parallel() {
        let r = result("threshold", 2.0, 6.0);
        assert!((r.speedup() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn report_contains_every_field_the_gate_documents() {
        let results = vec![result("threshold", 1.5, 4.5), result("topk", 8.0, 12.0)];
        let report = render_report(&results, "quick", 6, &[]);
        for needle in [
            "\"schema\": 1",
            "\"mode\": \"quick\"",
            "\"threads\": 4",
            "\"host_cores\": 6",
            "\"warnings\": []",
            "\"refine_p50_ms\": 0.7500",
            "\"speedup\": 3.000",
        ] {
            assert!(report.contains(needle), "missing {needle} in {report}");
        }
        // The report itself parses with the same flat scanner (keys are
        // unique enough for CI consumers to grep).
        let parsed = parse_flat_numbers(&report);
        assert!(parsed.iter().any(|(k, _)| k == "p50_ms"));
        assert!(parsed.iter().any(|(k, v)| k == "host_cores" && *v == 6.0));
    }

    #[test]
    fn report_carries_refresh_warnings_escaped() {
        let results = vec![result("threshold", 2.0, 1.2)];
        let warnings = vec!["narrow \"host\"".to_string(), "line\nbreak".to_string()];
        let report = render_report(&results, "quick", 1, &warnings);
        assert!(report.contains("\"warnings\": ["), "{report}");
        assert!(report.contains("narrow \\\"host\\\""), "{report}");
        assert!(report.contains("line\\nbreak"), "{report}");
        // Escaped strings must not break the flat scanner's numbers.
        let parsed = parse_flat_numbers(&report);
        assert!(parsed.iter().any(|(k, v)| k == "host_cores" && *v == 1.0));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\tz"), "x\\ny\\tz");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
