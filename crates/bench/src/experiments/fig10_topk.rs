//! Fig. 10 — top-k similarity search: query time (a) and candidates (b),
//! varying k ∈ {50 … 250}, for TraSS vs DFT / DITA / JUST / REPOSE.

use crate::datasets::{self, Dataset};
use crate::harness;
use crate::report::Reporter;
use trass_traj::Measure;

/// The k sweep of §VI-B.
pub const K_SWEEP: [usize; 5] = [50, 100, 150, 200, 250];

/// Runs the experiment.
pub fn run() {
    let mut rep = Reporter::new("fig10");
    for ds in [datasets::tdrive(), datasets::lorry()] {
        run_dataset(&ds, &mut rep);
    }
    let path = rep.finish();
    println!("fig10 rows appended to {}", path.display());
}

fn run_dataset(ds: &Dataset, rep: &mut Reporter) {
    // Top-k is heavier per query; use a smaller batch.
    let queries = datasets::queries(ds, (datasets::n_queries() / 2).max(5));
    let solutions = harness::build_all(ds);
    for k in K_SWEEP {
        let agg = harness::run_trass_topk(&solutions.trass, &queries, k, Measure::Frechet);
        rep.row(
            ds.name,
            "TraSS",
            "k",
            k as f64,
            &[
                ("time_ms", agg.median_time.as_secs_f64() * 1e3),
                ("candidates", agg.mean_candidates),
                ("retrieved", agg.mean_retrieved),
            ],
        );
        for engine in &solutions.baselines {
            if let Some(agg) =
                harness::run_engine_topk(engine.as_ref(), &queries, k, Measure::Frechet)
            {
                rep.row(
                    ds.name,
                    engine.name(),
                    "k",
                    k as f64,
                    &[
                        ("time_ms", agg.median_time.as_secs_f64() * 1e3),
                        ("candidates", agg.mean_candidates),
                        ("retrieved", agg.mean_retrieved),
                    ],
                );
            }
        }
    }
}
