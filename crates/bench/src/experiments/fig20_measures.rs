//! Fig. 20 — other measures (§VII): Hausdorff and DTW query times.
//!
//! Support matrix follows the paper: DITA has no Hausdorff, DFT has no
//! DTW, REPOSE is top-k-only; unsupported cells simply produce no row.

use crate::datasets::{self, Dataset};
use crate::harness;
use crate::report::Reporter;
use trass_traj::Measure;

/// Runs the experiment.
pub fn run() {
    let mut rep = Reporter::new("fig20");
    for ds in [datasets::tdrive(), datasets::lorry()] {
        run_dataset(&ds, &mut rep);
    }
    let path = rep.finish();
    println!("fig20 rows appended to {}", path.display());
}

fn run_dataset(ds: &Dataset, rep: &mut Reporter) {
    let queries = datasets::queries(ds, (datasets::n_queries() / 2).max(5));
    let solutions = harness::build_all(ds);
    for measure in [Measure::Hausdorff, Measure::Dtw] {
        // DTW budgets are sums of point distances; use a larger eps so
        // threshold answers are non-trivial.
        let eps = match measure {
            Measure::Dtw => 0.2,
            _ => 0.01,
        };
        let th = harness::run_trass_threshold(&solutions.trass, &queries, eps, measure);
        let tk = harness::run_trass_topk(&solutions.trass, &queries, 50, measure);
        rep.row(
            ds.name,
            "TraSS",
            &format!("{measure}"),
            eps,
            &[
                ("threshold_ms", th.median_time.as_secs_f64() * 1e3),
                ("topk_ms", tk.median_time.as_secs_f64() * 1e3),
            ],
        );
        for engine in &solutions.baselines {
            let th = harness::run_engine_threshold(engine.as_ref(), &queries, eps, measure);
            let tk = harness::run_engine_topk(engine.as_ref(), &queries, 50, measure);
            let mut metrics: Vec<(&str, f64)> = Vec::new();
            if let Some(th) = &th {
                metrics.push(("threshold_ms", th.median_time.as_secs_f64() * 1e3));
            }
            if let Some(tk) = &tk {
                metrics.push(("topk_ms", tk.median_time.as_secs_f64() * 1e3));
            }
            if !metrics.is_empty() {
                rep.row(ds.name, engine.name(), &format!("{measure}"), eps, &metrics);
            }
        }
    }
}
