//! Fig. 12 — distribution of trajectories over XZ\* resolutions (a) and
//! position codes (b).
//!
//! The paper's signature features: most trajectories land at resolutions
//! 10–16 (driving ranges 0.5–78 km), plus a peak at the maximum resolution
//! from stationary taxis, and a non-degenerate spread over position codes.

use crate::datasets;
use crate::report::Reporter;
use trass_index::xzstar::XzStar;

/// Runs the experiment.
pub fn run() {
    let mut rep = Reporter::new("fig12");
    let ds = datasets::tdrive();
    let space = trass_geo::WORLD_SQUARE; // the paper's whole-earth deployment
    let index = XzStar::new(16);

    let mut by_level = [0u64; 17];
    let mut by_code = [0u64; 11];
    for t in &ds.data {
        let unit: Vec<_> = t.points().iter().map(|p| space.to_unit(p)).collect();
        let s = index.index_points(&unit);
        by_level[s.cell.level as usize] += 1;
        by_code[s.code.0 as usize] += 1;
    }
    for (level, &count) in by_level.iter().enumerate() {
        if count > 0 {
            rep.row(ds.name, "XZ*", "resolution", level as f64, &[("count", count as f64)]);
        }
    }
    for (code, &count) in by_code.iter().enumerate().skip(1) {
        rep.row(ds.name, "XZ*", "code", code as f64, &[("count", count as f64)]);
    }
    let path = rep.finish();
    println!("fig12 rows appended to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_has_paper_signatures() {
        std::env::remove_var("TRASS_REPRO_SCALE");
        let ds = datasets::tdrive();
        let space = trass_geo::WORLD_SQUARE;
        let index = XzStar::new(16);
        let mut by_level = [0u64; 17];
        let mut by_code = [0u64; 11];
        for t in &ds.data {
            let unit: Vec<_> = t.points().iter().map(|p| space.to_unit(p)).collect();
            let s = index.index_points(&unit);
            by_level[s.cell.level as usize] += 1;
            by_code[s.code.0 as usize] += 1;
        }
        let total: u64 = by_level.iter().sum();
        // Bulk of the mass in the mid-band (moving vehicles)...
        let mid: u64 = by_level[6..16].iter().sum();
        assert!(mid as f64 > 0.5 * total as f64, "mid-band {mid} of {total}");
        // ...and a visible stay-point peak at the maximum resolution
        // (Fig. 12(a)'s spike).
        assert!(
            by_level[16] as f64 > 0.05 * total as f64,
            "max-res peak missing: {} of {total}",
            by_level[16]
        );
        // Position codes are genuinely diverse: at least 6 distinct codes.
        let used = by_code.iter().filter(|&&c| c > 0).count();
        assert!(used >= 6, "only {used} codes in use");
    }
}
