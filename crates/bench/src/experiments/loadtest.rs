//! `repro loadtest` — concurrent-client load harness for the network
//! front-end.
//!
//! Builds an in-memory store, starts an in-process [`TrassServer`], and
//! hammers it from N concurrent client connections with a pinned mix of
//! threshold / top-k / range queries. Every wire response is checked
//! byte-identical (`f64::to_bits`) against embedded execution computed
//! up front — a result mismatch fails the run. Latencies land in one
//! shared [`Histogram`]; the report prints throughput and p50/p99/p999
//! and merges `server_*` keys into `BENCH_ci.json` as **report-only**
//! values (never gated: wire latency on a shared CI core says nothing
//! stable enough to gate on).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use trass_core::config::TrassConfig;
use trass_core::query;
use trass_core::store::TrajectoryStore;
use trass_obs::Histogram;
use trass_server::protocol::QueryRef;
use trass_server::{ServerOptions, TrassClient, TrassServer};
use trass_traj::{Measure, Trajectory};

use super::bench_gate::json_escape;

const SEED: u64 = 4242;
const EPS: f64 = 0.01;
const K: u32 = 10;
const OUTPUT_PATH: &str = "BENCH_ci.json";

/// One precomputed request with its embedded ground truth.
enum Case {
    Threshold { query: Trajectory, expected: Vec<(u64, f64)> },
    TopK { query: Trajectory, expected: Vec<(u64, f64)> },
    Range { window: [f64; 4], expected: Vec<(u64, f64)> },
}

impl Case {
    fn kind(&self) -> &'static str {
        match self {
            Case::Threshold { .. } => "threshold",
            Case::TopK { .. } => "topk",
            Case::Range { .. } => "range",
        }
    }
}

/// Entry point for `repro loadtest`.
pub fn run(quick: bool, clients: usize, requests_per_client: usize) {
    let n = if quick { 600 } else { 2_400 };
    let n_queries = if quick { 8 } else { 24 };
    println!(
        "server loadtest: {n} trajectories, {n_queries} query mix, {clients} clients × \
         {requests_per_client} requests{}",
        if quick { " (quick)" } else { "" }
    );

    let store = build_store(n);
    let cases = build_cases(&store, n_queries);
    println!("  {} cases precomputed against embedded execution", cases.len());

    let server = TrassServer::serve(
        Arc::clone(&store),
        ServerOptions { addr: "127.0.0.1:0".to_string(), ..ServerOptions::default() },
    )
    .expect("bind loadtest server");
    let addr = server.local_addr();

    let latencies = Arc::new(Histogram::new());
    let mismatches = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let cases = &cases;
            let latencies = Arc::clone(&latencies);
            let mismatches = Arc::clone(&mismatches);
            s.spawn(move || {
                let mut client = TrassClient::connect(addr).expect("connect loadtest client");
                for j in 0..requests_per_client {
                    // Interleave so concurrent connections run different
                    // ops against the shared store at the same time.
                    let case = &cases[(c + j * clients) % cases.len()];
                    let t0 = Instant::now();
                    let got = match case {
                        Case::Threshold { query, .. } => client
                            .threshold(QueryRef::Inline(query.clone()), EPS, Measure::Frechet)
                            .expect("wire threshold"),
                        Case::TopK { query, .. } => client
                            .top_k(QueryRef::Inline(query.clone()), K, Measure::Frechet)
                            .expect("wire topk"),
                        Case::Range { window, .. } => client.range(*window).expect("wire range"),
                    };
                    latencies.record_duration(t0.elapsed());
                    let expected = match case {
                        Case::Threshold { expected, .. }
                        | Case::TopK { expected, .. }
                        | Case::Range { expected, .. } => expected,
                    };
                    if !bit_identical(&got, expected) {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "MISMATCH: client {c} request {j} ({}) diverged from embedded \
                             execution",
                            case.kind()
                        );
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();

    // Graceful shutdown through the wire, mirroring a real deployment.
    let mut closer = TrassClient::connect(addr).expect("connect for shutdown");
    closer.shutdown_server().expect("wire shutdown");
    let mut server = server;
    server.wait();
    server.shutdown();

    let total = clients * requests_per_client;
    let qps = total as f64 / elapsed.as_secs_f64().max(1e-9);
    let p = latencies.percentiles();
    let (p50_ms, p99_ms, p999_ms) = (p.p50 as f64 / 1e6, p.p99 as f64 / 1e6, p.p999 as f64 / 1e6);
    println!(
        "  {total} requests in {:.2?}: {qps:.0} req/s, p50 {p50_ms:.3} ms, p99 {p99_ms:.3} ms, \
         p999 {p999_ms:.3} ms",
        elapsed
    );

    let warnings = loadtest_warnings(host_cores(), clients);
    for w in &warnings {
        eprintln!("warning: {w}");
    }

    let bad = mismatches.load(Ordering::Relaxed);
    if bad > 0 {
        eprintln!("server loadtest: FAILED — {bad} response(s) diverged from embedded execution");
        std::process::exit(1);
    }
    println!("server loadtest: all {total} responses byte-identical to embedded execution");

    let extra = render_server_keys(clients, total, qps, p50_ms, p99_ms, p999_ms, &warnings);
    let existing = std::fs::read_to_string(OUTPUT_PATH).unwrap_or_default();
    std::fs::write(OUTPUT_PATH, merged_report(&existing, &extra)).expect("write BENCH_ci.json");
    println!("merged server_* keys into {OUTPUT_PATH} (report-only, not gated)");
}

fn build_store(n: usize) -> Arc<TrajectoryStore> {
    let cfg = TrassConfig { max_resolution: 12, trace_sample_every: 0, ..TrassConfig::default() };
    let store = TrajectoryStore::open(cfg).expect("valid config");
    let data = trass_traj::generator::tdrive_like(SEED, n);
    store.insert_all(&data).expect("insert");
    store.flush().expect("flush");
    Arc::new(store)
}

fn build_cases(store: &TrajectoryStore, n_queries: usize) -> Vec<Case> {
    let data = trass_traj::generator::tdrive_like(SEED, 200);
    let queries = trass_traj::generator::sample_queries(&data, n_queries, SEED + 1);
    let mut cases = Vec::with_capacity(queries.len() * 3);
    for q in queries {
        let expected =
            query::threshold_search(store, &q, EPS, Measure::Frechet).expect("embedded").results;
        cases.push(Case::Threshold { query: q.clone(), expected });
        let expected =
            query::top_k_search(store, &q, K as usize, Measure::Frechet).expect("embedded").results;
        cases.push(Case::TopK { query: q.clone(), expected });
        let m = q.mbr().extended(0.02);
        let window = [m.min_x, m.min_y, m.max_x, m.max_y];
        let expected = query::range_search(store, &trass_server::protocol::window_mbr(&window))
            .expect("embedded")
            .results;
        cases.push(Case::Range { window, expected });
    }
    cases
}

fn bit_identical(got: &[(u64, f64)], expected: &[(u64, f64)]) -> bool {
    got.len() == expected.len()
        && got
            .iter()
            .zip(expected)
            .all(|((gt, gd), (et, ed))| gt == et && gd.to_bits() == ed.to_bits())
}

/// Caveats mirroring the bench gate's: throughput numbers from a host
/// narrower than the client count measure queueing, not the server.
fn loadtest_warnings(host_cores: usize, clients: usize) -> Vec<String> {
    let mut out = Vec::new();
    if host_cores > 0 && host_cores < clients {
        out.push(format!(
            "host has {host_cores} core(s) for {clients} concurrent clients plus the server: \
             throughput and tail latencies measure oversubscription, not server capacity"
        ));
    }
    out
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0)
}

/// Renders the `server_*` lines merged into `BENCH_ci.json` (no braces,
/// no trailing newline).
#[allow(clippy::too_many_arguments)]
fn render_server_keys(
    clients: usize,
    total: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    warnings: &[String],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("  \"server_clients\": {clients},\n"));
    out.push_str(&format!("  \"server_requests_total\": {total},\n"));
    out.push_str(&format!("  \"server_throughput_qps\": {qps:.1},\n"));
    out.push_str(&format!("  \"server_p50_ms\": {p50_ms:.4},\n"));
    out.push_str(&format!("  \"server_p99_ms\": {p99_ms:.4},\n"));
    out.push_str(&format!("  \"server_p999_ms\": {p999_ms:.4},\n"));
    out.push_str("  \"server_warnings\": [");
    for (i, w) in warnings.iter().enumerate() {
        out.push_str(&format!(
            "\n    \"{}\"{}",
            json_escape(w),
            if i + 1 < warnings.len() { "," } else { "\n  " }
        ));
    }
    out.push(']');
    out
}

/// Splices `extra` key lines into an existing flat-ish JSON report. Any
/// previous `server_*` block (everything from the `"server_clients"` key
/// on) is dropped first so reruns stay idempotent; an empty or missing
/// report becomes a fresh object holding only the server keys.
fn merged_report(existing: &str, extra: &str) -> String {
    let trimmed = existing.trim();
    let body = trimmed.strip_suffix('}').unwrap_or(trimmed).trim_end();
    // Drop a previous loadtest's block (always appended last).
    let body = match body.find("\"server_clients\"") {
        Some(at) => body[..at].trim_end().trim_end_matches(','),
        None => body,
    };
    let body = match body.strip_prefix('{') {
        // Keep the first key's indentation: only shed the newline after `{`.
        Some(rest) => rest.trim_start_matches(['\n', '\r']),
        None => body,
    };
    if body.is_empty() {
        return format!("{{\n{extra}\n}}\n");
    }
    format!("{{\n{},\n{extra}\n}}\n", body.trim_end().trim_end_matches(','))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_report_appends_to_a_bench_report() {
        let existing = "{\n  \"schema\": 1,\n  \"host_cores\": 4\n}\n";
        let merged = merged_report(existing, "  \"server_clients\": 8");
        assert!(merged.contains("\"schema\": 1"), "{merged}");
        assert!(merged.contains("\"host_cores\": 4,"), "{merged}");
        assert!(merged.ends_with("  \"server_clients\": 8\n}\n"), "{merged}");
    }

    #[test]
    fn merged_report_replaces_a_previous_server_block() {
        let existing =
            "{\n  \"schema\": 1,\n  \"server_clients\": 4,\n  \"server_p99_ms\": 1.0\n}\n";
        let merged = merged_report(existing, "  \"server_clients\": 8");
        assert_eq!(merged.matches("server_clients").count(), 1, "{merged}");
        assert!(!merged.contains("server_p99_ms"), "{merged}");
        assert!(merged.contains("\"schema\": 1"), "{merged}");
    }

    #[test]
    fn merged_report_handles_missing_and_empty_reports() {
        for existing in ["", "{}", "{\n}\n"] {
            let merged = merged_report(existing, "  \"server_clients\": 8");
            assert_eq!(merged, "{\n  \"server_clients\": 8\n}\n", "from {existing:?}");
        }
    }

    #[test]
    fn server_keys_render_flat_and_escaped() {
        let keys = render_server_keys(
            8,
            200,
            123.45,
            1.5,
            9.0,
            20.0,
            &["a \"quoted\" warning".to_string()],
        );
        for needle in [
            "\"server_clients\": 8",
            "\"server_requests_total\": 200",
            "\"server_throughput_qps\": 123.5",
            "\"server_p50_ms\": 1.5000",
            "\"server_p99_ms\": 9.0000",
            "\"server_p999_ms\": 20.0000",
            "a \\\"quoted\\\" warning",
        ] {
            assert!(keys.contains(needle), "missing {needle} in {keys}");
        }
        // And the whole thing survives a merge as parseable flat numbers.
        let merged = merged_report("{\n  \"schema\": 1\n}\n", &keys);
        assert!(merged.contains("\"server_warnings\": ["), "{merged}");
    }

    #[test]
    fn loadtest_warnings_fire_only_when_narrow() {
        assert!(!loadtest_warnings(2, 8).is_empty());
        assert!(loadtest_warnings(16, 8).is_empty());
        assert!(loadtest_warnings(0, 8).is_empty());
    }
}
