//! Shared machinery: building the solutions and timing their queries on a
//! common axis.

use crate::datasets::Dataset;
use std::time::{Duration, Instant};
use trass_baselines::dft::DftEngine;
use trass_baselines::dita::DitaEngine;
use trass_baselines::repose::ReposeEngine;
use trass_baselines::xz_kv::{XzKvConfig, XzKvEngine};
use trass_baselines::{EngineResult, SimilarityEngine};
use trass_core::{config::TrassConfig, query, store::TrajectoryStore};
use trass_obs::Histogram;
use trass_traj::{Measure, Trajectory};

/// All solutions of the evaluation, built over one dataset.
pub struct Solutions {
    /// TraSS itself (not a `SimilarityEngine` — it carries richer stats).
    pub trass: TrajectoryStore,
    /// Time to index + load TraSS.
    pub trass_build: Duration,
    /// The baseline engines.
    pub baselines: Vec<Box<dyn SimilarityEngine>>,
}

/// Builds TraSS over a dataset with a given maximum resolution.
///
/// Uses the whole-earth space, as the paper's deployment does ("The entire
/// index space of the XZ\* index covers the earth", §VI) — resolution-
/// dependent figures (12, 14–15) only reproduce under absolute depths.
pub fn build_trass(ds: &Dataset, max_resolution: u8, shards: u8) -> (TrajectoryStore, Duration) {
    let t0 = Instant::now();
    let _ = &ds.extent; // extent drives the generators, not the index space
    let cfg = TrassConfig {
        max_resolution,
        shards,
        space: trass_geo::WORLD_SQUARE,
        ..TrassConfig::default()
    };
    let store = TrajectoryStore::open(cfg).expect("valid config");
    store.insert_all(&ds.data).expect("in-memory insert");
    store.flush().expect("flush");
    (store, t0.elapsed())
}

/// Builds every solution over a dataset.
pub fn build_all(ds: &Dataset) -> Solutions {
    let (trass, trass_build) = build_trass(ds, 16, 8);
    let baselines: Vec<Box<dyn SimilarityEngine>> = vec![
        Box::new(DftEngine::build(ds.data.clone(), 1)),
        Box::new(DitaEngine::build(ds.data.clone())),
        Box::new(XzKvEngine::build(&ds.data, XzKvConfig::default())),
        Box::new(ReposeEngine::build(ds.data.clone(), 2)),
    ];
    Solutions { trass, trass_build, baselines }
}

/// One solution's aggregate numbers over a query batch.
///
/// Latency percentiles come from a [`trass_obs::Histogram`] over the
/// per-query nanosecond samples — the same structure the live metrics
/// endpoint serves, so benchmark numbers and monitoring numbers share one
/// quantization (≤ 1/32 relative error).
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Median query time.
    pub median_time: Duration,
    /// 99th-percentile query time (Fig. 18).
    pub p99_time: Duration,
    /// 99.9th-percentile query time.
    pub p999_time: Duration,
    /// Mean candidates per query.
    pub mean_candidates: f64,
    /// Mean rows retrieved per query.
    pub mean_retrieved: f64,
    /// Mean results per query.
    pub mean_results: f64,
    /// Mean precision (results / candidates).
    pub mean_precision: f64,
    /// Mean global-pruning time.
    pub mean_pruning_time: Duration,
    /// Median refine-stage time (zero for engines that don't report it).
    pub median_refine_time: Duration,
    /// Mean candidates discarded by refinement's lower bounds per query
    /// (zero for engines without the prefilter).
    pub mean_refine_pruned: f64,
}

/// One query's raw numbers: total time, candidates, retrieved, results,
/// pruning time, refine time, refine-bound prunes.
type Sample = (Duration, u64, u64, u64, Duration, Duration, u64);

fn aggregate(samples: &[Sample]) -> Aggregate {
    assert!(!samples.is_empty());
    let times = Histogram::new();
    let refine_times = Histogram::new();
    for s in samples {
        times.record_duration(s.0);
        refine_times.record_duration(s.5);
    }
    let p = times.percentiles();
    let n = samples.len();
    let median_time = Duration::from_nanos(p.p50);
    let p99_time = Duration::from_nanos(p.p99);
    let p999_time = Duration::from_nanos(p.p999);
    let sum_c: u64 = samples.iter().map(|s| s.1).sum();
    let sum_r: u64 = samples.iter().map(|s| s.2).sum();
    let sum_res: u64 = samples.iter().map(|s| s.3).sum();
    let sum_prune: Duration = samples.iter().map(|s| s.4).sum();
    let sum_refine_pruned: u64 = samples.iter().map(|s| s.6).sum();
    let mean_precision =
        samples.iter().map(|s| if s.1 == 0 { 1.0 } else { s.3 as f64 / s.1 as f64 }).sum::<f64>()
            / n as f64;
    Aggregate {
        median_time,
        p99_time,
        p999_time,
        mean_candidates: sum_c as f64 / n as f64,
        mean_retrieved: sum_r as f64 / n as f64,
        mean_results: sum_res as f64 / n as f64,
        mean_precision,
        mean_pruning_time: sum_prune / n as u32,
        median_refine_time: Duration::from_nanos(refine_times.percentiles().p50),
        mean_refine_pruned: sum_refine_pruned as f64 / n as f64,
    }
}

/// Runs TraSS threshold search over a query batch.
pub fn run_trass_threshold(
    store: &TrajectoryStore,
    queries: &[Trajectory],
    eps: f64,
    measure: Measure,
) -> Aggregate {
    let samples: Vec<_> = queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            let r = query::threshold_search(store, q, eps, measure).expect("search");
            (
                t0.elapsed(),
                r.stats.candidates,
                r.stats.retrieved,
                r.stats.results,
                r.stats.pruning_time,
                r.stats.refine_time,
                r.stats.refine_prune.pruned_total(),
            )
        })
        .collect();
    aggregate(&samples)
}

/// Runs TraSS top-k search over a query batch.
pub fn run_trass_topk(
    store: &TrajectoryStore,
    queries: &[Trajectory],
    k: usize,
    measure: Measure,
) -> Aggregate {
    let samples: Vec<_> = queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            let r = query::top_k_search(store, q, k, measure).expect("search");
            (
                t0.elapsed(),
                r.stats.candidates,
                r.stats.retrieved,
                r.stats.results,
                r.stats.pruning_time,
                r.stats.refine_time,
                r.stats.refine_prune.pruned_total(),
            )
        })
        .collect();
    aggregate(&samples)
}

/// Runs a baseline's threshold search over a query batch; `None` when the
/// engine does not support the operation/measure.
pub fn run_engine_threshold(
    engine: &dyn SimilarityEngine,
    queries: &[Trajectory],
    eps: f64,
    measure: Measure,
) -> Option<Aggregate> {
    let samples: Vec<_> = queries
        .iter()
        .map(|q| engine.threshold(q, eps, measure).map(to_sample))
        .collect::<Option<Vec<_>>>()?;
    Some(aggregate(&samples))
}

/// Runs a baseline's top-k search over a query batch.
pub fn run_engine_topk(
    engine: &dyn SimilarityEngine,
    queries: &[Trajectory],
    k: usize,
    measure: Measure,
) -> Option<Aggregate> {
    let samples: Vec<_> = queries
        .iter()
        .map(|q| engine.top_k(q, k, measure).map(to_sample))
        .collect::<Option<Vec<_>>>()?;
    Some(aggregate(&samples))
}

fn to_sample(r: EngineResult) -> Sample {
    (
        r.query_time,
        r.candidates,
        r.retrieved,
        r.results.len() as u64,
        Duration::ZERO,
        Duration::ZERO,
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `within`: histogram percentiles carry ≤ 1/32 relative quantization.
    fn close(got: Duration, want: Duration) -> bool {
        let (g, w) = (got.as_nanos() as f64, want.as_nanos() as f64);
        (g - w).abs() / w <= 1.0 / 32.0 + 1e-9
    }

    #[test]
    fn aggregate_math() {
        let samples = vec![
            (
                Duration::from_millis(1),
                10,
                20,
                5,
                Duration::from_micros(10),
                Duration::from_micros(100),
                4,
            ),
            (
                Duration::from_millis(3),
                20,
                40,
                10,
                Duration::from_micros(20),
                Duration::from_micros(300),
                8,
            ),
            (
                Duration::from_millis(2),
                0,
                0,
                0,
                Duration::from_micros(30),
                Duration::from_micros(200),
                0,
            ),
        ];
        let a = aggregate(&samples);
        assert!(close(a.median_time, Duration::from_millis(2)), "{:?}", a.median_time);
        assert!(close(a.p99_time, Duration::from_millis(3)), "{:?}", a.p99_time);
        assert!(close(a.p999_time, Duration::from_millis(3)), "{:?}", a.p999_time);
        assert!(a.p99_time >= a.median_time);
        assert!((a.mean_candidates - 10.0).abs() < 1e-9);
        assert!((a.mean_retrieved - 20.0).abs() < 1e-9);
        // precision: 0.5, 0.5, 1.0 → 2/3
        assert!((a.mean_precision - 2.0 / 3.0).abs() < 1e-9);
        assert!(
            close(a.median_refine_time, Duration::from_micros(200)),
            "{:?}",
            a.median_refine_time
        );
        assert!((a.mean_refine_pruned - 4.0).abs() < 1e-9);
    }
}
