//! Experiment harness reproducing every table and figure of the TraSS
//! evaluation (§VI–§VII).
//!
//! The `repro` binary runs one experiment per invocation (`repro fig9`,
//! `repro all`, …); each experiment prints a table mirroring the paper's
//! figure and appends machine-readable rows to `results/<exp>.jsonl`.
//! EXPERIMENTS.md is written from these outputs.
//!
//! Dataset sizes are scaled for a single machine (the paper used a 5-node
//! cluster and up to 136 GB of data); set `TRASS_REPRO_SCALE` to grow or
//! shrink them. Shapes — who wins, by what factor, where crossovers sit —
//! are the reproduction target, not absolute milliseconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
pub mod harness;
pub mod report;
