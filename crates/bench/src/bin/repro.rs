//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment>
//!   fig9    threshold search sweep (time + candidates vs ε)
//!   fig10   top-k search sweep (time + candidates vs k)
//!   fig11   pruning strategies (pruning time, retrieved, precision)
//!   fig12   trajectory distribution over resolutions / position codes
//!   fig13   indexing time + rowkey storage overhead
//!   fig14   varying maximum resolution (selectivity + query time; Fig. 14–15)
//!   fig17   scalability on synthetic ×t datasets
//!   fig18   p99 tail latency
//!   fig19   shard sweep
//!   fig20   Hausdorff and DTW measures
//!   io      theoretical 83.6 % + measured I/O reduction vs XZ-Ordering
//!   obs     observability demo: Prometheus + JSON dump, slow-query log
//!           (--serve keeps it up behind the HTTP telemetry endpoint)
//!   explain EXPLAIN ANALYZE demo: per-query trace trees, text + JSON
//!   profile continuous-profiling demo: flight recorder folded into
//!           collapsed-stack format under wall / alloc / cpu weights
//!   workload per-fingerprint workload summary for the demo query mix
//!   bench   CI perf-regression gate (flags: --quick --update-baseline)
//!   loadtest concurrent-client load harness against a live trass-server
//!           (flags: --quick --clients N --requests N); merges report-only
//!           server_* keys into BENCH_ci.json
//!   all     everything, in order
//! ```
//!
//! Environment: `TRASS_REPRO_SCALE` scales dataset sizes (default 1.0 ≈
//! 5 000 trajectories per dataset), `TRASS_REPRO_QUERIES` sets the query
//! batch (default 40). Results append to `results/<exp>.jsonl`.

use trass_bench::experiments;

// Count every allocation by stage: the stage-tagged accounting behind
// `repro profile`, `/profile?weight=alloc`, and the per-span alloc fields
// in `repro explain` only engages when the counting allocator is the
// process allocator.
#[global_allocator]
static ALLOC: trass_obs::CountingAlloc = trass_obs::CountingAlloc::system();

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: repro <fig9|fig10|fig11|fig12|fig13|fig14|fig17|fig18|fig19|fig20|io|ablation|obs|explain|profile|workload|bench|loadtest|all>");
        std::process::exit(2);
    });
    match arg.as_str() {
        "bench" => {
            let flags: Vec<String> = std::env::args().skip(2).collect();
            for f in &flags {
                if f != "--quick" && f != "--update-baseline" {
                    eprintln!("usage: repro bench [--quick] [--update-baseline]");
                    std::process::exit(2);
                }
            }
            let quick = flags.iter().any(|f| f == "--quick");
            let update = flags.iter().any(|f| f == "--update-baseline");
            experiments::bench_gate::run(quick, update)
        }
        "loadtest" => {
            let args: Vec<String> = std::env::args().skip(2).collect();
            let mut quick = false;
            let mut clients = 8usize;
            let mut requests: Option<usize> = None;
            let mut i = 0;
            while i < args.len() {
                match args[i].as_str() {
                    "--quick" => {
                        quick = true;
                        i += 1;
                    }
                    "--clients" | "--requests" => {
                        let value = args.get(i + 1).and_then(|v| v.parse::<usize>().ok());
                        let Some(v) = value.filter(|&v| v > 0) else {
                            eprintln!(
                                "usage: repro loadtest [--quick] [--clients N] [--requests N]"
                            );
                            std::process::exit(2);
                        };
                        if args[i] == "--clients" {
                            clients = v;
                        } else {
                            requests = Some(v);
                        }
                        i += 2;
                    }
                    _ => {
                        eprintln!("usage: repro loadtest [--quick] [--clients N] [--requests N]");
                        std::process::exit(2);
                    }
                }
            }
            let requests = requests.unwrap_or(if quick { 25 } else { 200 });
            experiments::loadtest::run(quick, clients, requests)
        }
        "fig9" => experiments::fig09_threshold::run(),
        "fig10" => experiments::fig10_topk::run(),
        "fig11" => experiments::fig11_pruning::run(),
        "fig12" => experiments::fig12_distribution::run(),
        "fig13" => experiments::fig13_overhead::run(),
        "fig14" | "fig15" => experiments::fig14_resolution::run(),
        "fig17" => experiments::fig17_scalability::run(),
        "fig18" => experiments::fig18_tail_latency::run(),
        "fig19" => experiments::fig19_shards::run(),
        "fig20" => experiments::fig20_measures::run(),
        "io" => experiments::io_reduction::run(),
        "ablation" => experiments::ablation::run(),
        "obs" => {
            let flags: Vec<String> = std::env::args().skip(2).collect();
            for f in &flags {
                if f != "--serve" {
                    eprintln!("usage: repro obs [--serve]");
                    std::process::exit(2);
                }
            }
            if flags.iter().any(|f| f == "--serve") {
                return experiments::obs_demo::serve();
            }
            experiments::obs_demo::run()
        }
        "explain" => experiments::explain_demo::run(),
        "profile" => experiments::obs_demo::profile(),
        "workload" => experiments::obs_demo::workload(),
        "all" => experiments::run_all(),
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}
