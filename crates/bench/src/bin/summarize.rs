//! `summarize` — renders `results/*.jsonl` experiment rows as markdown
//! tables (the format EXPERIMENTS.md embeds).
//!
//! ```sh
//! summarize [results_dir]
//! ```

use serde_json::Value;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn main() {
    let dir = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| "results".into());
    let Ok(entries) = std::fs::read_dir(&dir) else {
        eprintln!("no results directory at {}", dir.display());
        std::process::exit(1);
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    files.sort();
    for file in files {
        let Ok(text) = std::fs::read_to_string(&file) else { continue };
        let rows: Vec<Value> = text.lines().filter_map(|l| serde_json::from_str(l).ok()).collect();
        if rows.is_empty() {
            continue;
        }
        let experiment = rows[0]["experiment"].as_str().unwrap_or("?").to_string();
        println!("\n### {experiment}\n");
        // Collect the metric columns in first-seen order.
        let mut metrics: Vec<String> = Vec::new();
        for r in &rows {
            if let Some(map) = r["metrics"].as_object() {
                for k in map.keys() {
                    if !metrics.contains(k) {
                        metrics.push(k.clone());
                    }
                }
            }
        }
        print!("| dataset | solution | param | value |");
        for m in &metrics {
            print!(" {m} |");
        }
        println!();
        print!("|---|---|---|---|");
        for _ in &metrics {
            print!("---|");
        }
        println!();
        // Deduplicate repeated runs: keep the last row per
        // (dataset, solution, param, value).
        let mut dedup: BTreeMap<String, &Value> = BTreeMap::new();
        for r in &rows {
            let key = format!(
                "{}|{}|{}|{}",
                r["dataset"].as_str().unwrap_or(""),
                r["solution"].as_str().unwrap_or(""),
                r["param"].as_str().unwrap_or(""),
                r["param_value"]
            );
            dedup.insert(key, r);
        }
        for r in dedup.values() {
            print!(
                "| {} | {} | {} | {} |",
                r["dataset"].as_str().unwrap_or(""),
                r["solution"].as_str().unwrap_or(""),
                r["param"].as_str().unwrap_or(""),
                r["param_value"]
            );
            for m in &metrics {
                match r["metrics"].get(m).and_then(|v| v.as_f64()) {
                    Some(v) if v.abs() >= 100.0 => print!(" {v:.0} |"),
                    Some(v) => print!(" {v:.3} |"),
                    None => print!(" – |"),
                }
            }
            println!();
        }
    }
}
