//! Benchmark datasets (DESIGN.md § datasets).

use trass_geo::Mbr;
use trass_traj::generator::{self, BEIJING, CHINA};
use trass_traj::Trajectory;

/// Scale multiplier from `TRASS_REPRO_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("TRASS_REPRO_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// Number of query trajectories per experiment (`TRASS_REPRO_QUERIES`,
/// default 40; the paper uses 400 on its cluster).
pub fn n_queries() -> usize {
    std::env::var("TRASS_REPRO_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(40)
}

fn scaled(base: usize) -> usize {
    ((base as f64 * scale()) as usize).max(100)
}

/// A named benchmark dataset with its spatial extent.
pub struct Dataset {
    /// Display name ("T-Drive", "Lorry", …).
    pub name: &'static str,
    /// The trajectories.
    pub data: Vec<Trajectory>,
    /// Square-able spatial extent for index configuration.
    pub extent: Mbr,
}

/// The T-Drive-like taxi workload (default 5 000 trajectories).
pub fn tdrive() -> Dataset {
    Dataset { name: "T-Drive", data: generator::tdrive_like(42, scaled(5_000)), extent: BEIJING }
}

/// The Lorry-like logistics workload (default 5 000 trajectories).
pub fn lorry() -> Dataset {
    Dataset { name: "Lorry", data: generator::lorry_like(43, scaled(5_000)), extent: CHINA }
}

/// The Gaussian-clustered hotspot workload (default 2 000 trajectories).
/// Not part of the paper's evaluation — the observability demo uses it
/// because the skewed density gives per-shard and per-stage metrics real
/// variance.
pub fn gaussian() -> Dataset {
    Dataset { name: "Gaussian", data: generator::gaussian_like(44, scaled(2_000)), extent: BEIJING }
}

/// The ×t synthetic scalability datasets (§VI datasets (3)).
pub fn synthetic(t: usize) -> Dataset {
    let base = generator::lorry_like(43, scaled(2_000));
    Dataset {
        name: "Synthetic",
        data: generator::scale_dataset(&base, t, 91, &CHINA),
        extent: CHINA,
    }
}

/// Query trajectories sampled from a dataset (the paper samples 400 and
/// reports medians).
pub fn queries(ds: &Dataset, n: usize) -> Vec<Trajectory> {
    generator::sample_queries(&ds.data, n, 7_777)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_reproducible_and_sized() {
        std::env::remove_var("TRASS_REPRO_SCALE");
        let a = tdrive();
        let b = tdrive();
        assert_eq!(a.data.len(), b.data.len());
        assert_eq!(a.data[0], b.data[0]);
        assert!(a.data.len() >= 100);
    }

    #[test]
    fn synthetic_scales_linearly() {
        let s1 = synthetic(1);
        let s3 = synthetic(3);
        assert_eq!(s3.data.len(), 3 * s1.data.len());
    }

    #[test]
    fn queries_come_from_dataset() {
        let ds = tdrive();
        let qs = queries(&ds, 5);
        assert_eq!(qs.len(), 5);
        for q in &qs {
            assert!(ds.data.iter().any(|t| t.points() == q.points()));
        }
    }
}
