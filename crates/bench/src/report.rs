//! Result reporting: aligned console tables plus JSONL files under
//! `results/`.

use serde::Serialize;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;

/// One machine-readable result row.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Experiment id, e.g. "fig9".
    pub experiment: String,
    /// Dataset name.
    pub dataset: String,
    /// Solution name ("TraSS", "DFT", …).
    pub solution: String,
    /// Swept parameter name ("eps", "k", "resolution", …).
    pub param: String,
    /// Swept parameter value.
    pub param_value: f64,
    /// Metric values keyed by name.
    pub metrics: serde_json::Map<String, serde_json::Value>,
}

/// Collects and emits one experiment's rows.
pub struct Reporter {
    experiment: String,
    rows: Vec<Row>,
}

impl Reporter {
    /// Starts a reporter for an experiment id.
    pub fn new(experiment: &str) -> Self {
        Reporter { experiment: experiment.to_string(), rows: Vec::new() }
    }

    /// Records a row.
    pub fn row(
        &mut self,
        dataset: &str,
        solution: &str,
        param: &str,
        param_value: f64,
        metrics: &[(&str, f64)],
    ) {
        let mut map = serde_json::Map::new();
        for (k, v) in metrics {
            map.insert(
                k.to_string(),
                serde_json::Number::from_f64(*v)
                    .map(serde_json::Value::Number)
                    .unwrap_or(serde_json::Value::Null),
            );
        }
        self.rows.push(Row {
            experiment: self.experiment.clone(),
            dataset: dataset.to_string(),
            solution: solution.to_string(),
            param: param.to_string(),
            param_value,
            metrics: map,
        });
    }

    /// Prints the rows as an aligned table and appends them to
    /// `results/<experiment>.jsonl`. Returns the output path.
    pub fn finish(self) -> PathBuf {
        // Console table.
        let metric_names: Vec<String> = {
            let mut names: Vec<String> = Vec::new();
            for r in &self.rows {
                for k in r.metrics.keys() {
                    if !names.contains(k) {
                        names.push(k.clone());
                    }
                }
            }
            names
        };
        println!("\n== {} ==", self.experiment);
        print!("{:<10} {:<12} {:>6} {:>10}", "dataset", "solution", "param", "value");
        for m in &metric_names {
            print!(" {m:>16}");
        }
        println!();
        for r in &self.rows {
            print!("{:<10} {:<12} {:>6} {:>10.4}", r.dataset, r.solution, r.param, r.param_value);
            for m in &metric_names {
                match r.metrics.get(m).and_then(|v| v.as_f64()) {
                    Some(v) => print!(" {v:>16.4}"),
                    None => print!(" {:>16}", "-"),
                }
            }
            println!();
        }

        // JSONL file.
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir).expect("create results dir");
        let path = dir.join(format!("{}.jsonl", self.experiment));
        let mut file =
            OpenOptions::new().create(true).append(true).open(&path).expect("open results file");
        for r in &self.rows {
            let line = serde_json::to_string(r).expect("serialize row");
            writeln!(file, "{line}").expect("write row");
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize() {
        let mut rep = Reporter::new("test-exp");
        rep.row("ds", "TraSS", "eps", 0.01, &[("time_ms", 1.5), ("candidates", 10.0)]);
        assert_eq!(rep.rows.len(), 1);
        let json = serde_json::to_string(&rep.rows[0]).unwrap();
        assert!(json.contains("\"experiment\":\"test-exp\""));
        assert!(json.contains("time_ms"));
    }
}
