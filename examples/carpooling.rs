//! Carpooling candidate clustering — the paper's second motivating use
//! case (§I: "trajectory similarity search is also conducive to carpooling
//! trajectory clustering").
//!
//! Groups commuter trips into shareable pools: each unclustered trip seeds
//! a pool and pulls in every trip within a Fréchet threshold via top-k +
//! threshold search — a greedy leader-clustering driven entirely by the
//! TraSS query API.
//!
//! ```sh
//! cargo run --release --example carpooling
//! ```

use std::collections::HashSet;
use trass::core::{query, TrajectoryStore, TrassConfig};
use trass::geo::Point;
use trass::traj::generator::BEIJING;
use trass::traj::{Measure, Trajectory};

/// Builds `per_route` commuter trips along each of `n_routes` home→work
/// corridors, with per-trip GPS jitter.
fn commuter_trips(n_routes: usize, per_route: usize) -> Vec<Trajectory> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for r in 0..n_routes {
        // Corridor endpoints spread over the city.
        let home = Point::new(116.05 + 0.08 * (r % 5) as f64, 39.65 + 0.11 * (r / 5) as f64);
        let work = Point::new(116.45, 39.92);
        for trip in 0..per_route {
            let jitter = (trip as f64 - per_route as f64 / 2.0) * 0.0004;
            let points = (0..30)
                .map(|i| {
                    let t = i as f64 / 29.0;
                    let base = home.lerp(&work, t);
                    // Each corridor bends differently; trips on the same
                    // corridor stay close.
                    let bend = (t * std::f64::consts::PI).sin() * 0.01 * (r as f64 + 1.0);
                    Point::new(base.x + jitter, base.y + bend + jitter)
                })
                .collect();
            out.push(Trajectory::new(id, points));
            id += 1;
        }
    }
    out
}

fn main() {
    let n_routes = 8;
    let per_route = 25;
    let trips = commuter_trips(n_routes, per_route);
    let store = TrajectoryStore::open(TrassConfig::for_extent(BEIJING)).expect("open");
    store.insert_all(&trips).expect("insert");
    store.flush().expect("flush");
    println!("indexed {} commuter trips on {n_routes} corridors", trips.len());

    // Greedy leader clustering: every trip within eps of a pool leader
    // joins that leader's pool.
    let eps = 0.02;
    let mut assigned: HashSet<u64> = HashSet::new();
    let mut pools: Vec<(u64, Vec<u64>)> = Vec::new();
    for trip in &trips {
        if assigned.contains(&trip.id) {
            continue;
        }
        let hits =
            query::threshold_search(&store, trip, eps, Measure::Frechet).expect("threshold search");
        let members: Vec<u64> = hits
            .results
            .iter()
            .map(|&(tid, _)| tid)
            .filter(|tid| !assigned.contains(tid))
            .collect();
        for m in &members {
            assigned.insert(*m);
        }
        pools.push((trip.id, members));
    }

    println!("formed {} carpool pools:", pools.len());
    for (leader, members) in &pools {
        println!("  pool led by trip {leader}: {} riders", members.len());
    }

    // Every trip lands in exactly one pool.
    let total: usize = pools.iter().map(|(_, m)| m.len()).sum();
    assert_eq!(total, trips.len(), "every trip pooled exactly once");
    // Corridors are well-separated relative to eps, so the pool count
    // should equal the corridor count.
    assert_eq!(pools.len(), n_routes, "expected one pool per corridor (got {})", pools.len());
    println!("pooling matches the {n_routes} planted corridors ✔");
}
