//! Close-contact search — the paper's motivating scenario (§I): "to find
//! the close contacts of a patient with an infectious disease, we would
//! look for trajectories that are similar to the patient's trajectory".
//!
//! Builds a city of taxi trajectories, plants a handful of "contacts" that
//! shadow the patient's route at small offsets, and shows that threshold
//! similarity search recovers exactly those contacts while scanning a tiny
//! fraction of the store.
//!
//! ```sh
//! cargo run --release --example contact_tracing
//! ```

use trass::core::{query, TrajectoryStore, TrassConfig};
use trass::geo::Point;
use trass::traj::generator::{self, BEIJING};
use trass::traj::{Measure, Trajectory};

fn main() {
    // 5 000 background taxi trajectories.
    let mut population = generator::tdrive_like(2024, 5_000);
    let next_id = population.len() as u64;

    // The patient's route through the city.
    let patient = Trajectory::new(
        u64::MAX, // not stored; query only
        (0..40)
            .map(|i| {
                let t = i as f64 / 39.0;
                Point::new(116.30 + t * 0.05, 39.90 + (t * 9.0).sin() * 0.004)
            })
            .collect(),
    );

    // Five true close contacts: same route, jittered within ~200 m.
    let offsets = [0.0004, -0.0007, 0.0011, -0.0013, 0.0018];
    let mut contact_ids = Vec::new();
    for (i, off) in offsets.iter().enumerate() {
        let id = next_id + i as u64;
        contact_ids.push(id);
        let pts = patient.points().iter().map(|p| Point::new(p.x + off, p.y - off)).collect();
        population.push(Trajectory::new(id, pts));
    }

    // Index the city (extent-scoped space gives street-level resolution).
    let store = TrajectoryStore::open(TrassConfig::for_extent(BEIJING)).expect("open");
    store.insert_all(&population).expect("insert");
    store.flush().expect("flush");
    println!("indexed {} trajectories", population.len());

    // Contacts are within eps of the patient's path.
    let eps = 0.005; // ~500 m in degrees
    let hits = query::threshold_search(&store, &patient, eps, Measure::Frechet).expect("search");

    println!(
        "close-contact search: {} hits, {} rows scanned of {} stored ({:.2}%)",
        hits.results.len(),
        hits.stats.retrieved,
        population.len(),
        hits.stats.retrieved as f64 / population.len() as f64 * 100.0
    );
    for (tid, dist) in &hits.results {
        let planted = contact_ids.contains(tid);
        println!(
            "  trajectory {tid}: distance {dist:.5}° {}",
            if planted { "(planted contact)" } else { "" }
        );
    }

    // Every planted contact is recovered.
    for id in &contact_ids {
        assert!(hits.results.iter().any(|(tid, _)| tid == id), "planted contact {id} missed");
    }
    // And the search was selective: it touched a small fraction of the
    // store (this is the point of XZ* + global pruning).
    assert!(
        (hits.stats.retrieved as usize) < population.len() / 5,
        "search scanned {} of {} rows",
        hits.stats.retrieved,
        population.len()
    );
    println!("all planted contacts recovered ✔");
}
