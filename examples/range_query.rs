//! Spatial range query over the XZ\* index — the capability the paper's
//! conclusion highlights ("Besides, XZ\* index supports spatial range
//! query").
//!
//! Finds all trajectories passing through a district of the city and
//! cross-checks against a brute-force scan.
//!
//! ```sh
//! cargo run --release --example range_query
//! ```

use trass::core::{query, TrajectoryStore, TrassConfig};
use trass::geo::Mbr;
use trass::traj::generator::{self, BEIJING};

fn main() {
    let data = generator::tdrive_like(7, 3_000);
    let store = TrajectoryStore::open(TrassConfig::for_extent(BEIJING)).expect("open");
    store.insert_all(&data).expect("insert");
    store.flush().expect("flush");

    // A district in the city center.
    let district = Mbr::new(116.35, 39.85, 116.45, 39.95);
    let hits = query::range_search(&store, &district).expect("range query");
    println!(
        "range query over [{}, {}] × [{}, {}]: {} trajectories pass through",
        district.min_x,
        district.max_x,
        district.min_y,
        district.max_y,
        hits.results.len()
    );
    println!(
        "scanned {} of {} stored rows ({:.1}%), {} scan ranges",
        hits.stats.retrieved,
        data.len(),
        hits.stats.retrieved as f64 / data.len() as f64 * 100.0,
        hits.stats.n_ranges
    );

    // Verify against brute force.
    let expected: Vec<u64> = data
        .iter()
        .filter(|t| t.points().iter().any(|p| district.contains_point(p)))
        .map(|t| t.id)
        .collect();
    let got: Vec<u64> = hits.results.iter().map(|&(tid, _)| tid).collect();
    assert_eq!(got.len(), expected.len());
    assert!(expected.iter().all(|id| got.contains(id)));
    println!("matches brute force ({} trajectories) ✔", expected.len());
}
