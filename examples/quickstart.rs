//! Quickstart: store trajectories, run a threshold search and a top-k
//! search.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trass::core::{query, TrajectoryStore, TrassConfig};
use trass::geo::Point;
use trass::traj::{Measure, Trajectory};

fn main() {
    // A TraSS deployment with the paper's defaults: whole-earth index at
    // resolution 16, 8 shards, in-memory store.
    let store = TrajectoryStore::open(TrassConfig::default()).expect("open store");

    // Three taxi trips around Beijing. Points are (longitude, latitude).
    let trips = [
        Trajectory::new(
            1,
            vec![
                Point::new(116.397, 39.909), // Tiananmen
                Point::new(116.403, 39.915),
                Point::new(116.410, 39.920),
            ],
        ),
        Trajectory::new(
            2, // almost the same route, shifted ~100 m north
            vec![
                Point::new(116.397, 39.910),
                Point::new(116.403, 39.916),
                Point::new(116.410, 39.921),
            ],
        ),
        Trajectory::new(
            3, // a different part of town
            vec![
                Point::new(116.320, 39.990),
                Point::new(116.330, 39.985),
                Point::new(116.340, 39.980),
            ],
        ),
    ];
    for t in &trips {
        store.insert(t).expect("insert");
    }
    store.flush().expect("flush");

    // Threshold search: everything within 0.005° (~500 m) of trip 1 under
    // discrete Fréchet distance.
    let query_trip = &trips[0];
    let hits = query::threshold_search(&store, query_trip, 0.005, Measure::Frechet)
        .expect("threshold search");
    println!("threshold search (eps = 0.005°):");
    for (tid, dist) in &hits.results {
        println!("  trajectory {tid} at Fréchet distance {dist:.5}°");
    }
    assert_eq!(hits.results.len(), 2, "trip 1 matches itself and trip 2");

    // Top-k: the 2 most similar trips.
    let top = query::top_k_search(&store, query_trip, 2, Measure::Frechet).expect("top-k");
    println!("top-2 most similar:");
    for (tid, dist) in &top.results {
        println!("  trajectory {tid} at distance {dist:.5}°");
    }
    assert_eq!(top.results[0].0, 1, "the query's twin comes first");

    // The stats the paper's evaluation is built on.
    let s = &hits.stats;
    println!(
        "stats: {} scan ranges, {} rows retrieved, {} candidates, precision {:.2}",
        s.n_ranges,
        s.retrieved,
        s.candidates,
        s.precision()
    );
}
