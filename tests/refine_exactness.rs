//! The differential-exactness oracle for the refinement lower-bound
//! prefilter (`TRASS_REFINE_BOUNDS` / `TrassConfig::refine_bounds`).
//!
//! The contract: bounds and early-abandoning kernels are pure
//! optimisations. A store with `refine_bounds = true` must answer every
//! threshold, top-k and range query with *identical* results — same ids,
//! same order, same bit-level exact distances — as a store with the
//! legacy two-pass refine path, at every thread count. The trass-traj
//! half of the argument (bound soundness, kernel bit-identity) lives in
//! `crates/traj/tests/bounds_props.rs`; this file closes the loop over
//! the whole query pipeline.

use trass_core::config::TrassConfig;
use trass_core::query;
use trass_core::schema::{parse_rowkey, RowValue};
use trass_core::store::TrajectoryStore;
use trass_geo::Mbr;
use trass_traj::{generator, DpFeatures, Measure, Trajectory};

const MEASURES: [Measure; 3] = [Measure::Frechet, Measure::Hausdorff, Measure::Dtw];

fn open_store(data: &[Trajectory], refine_bounds: bool, threads: usize) -> TrajectoryStore {
    let extent = Mbr::new(116.0, 39.6, 116.8, 40.2);
    let cfg = TrassConfig {
        refine_bounds,
        query_threads: threads,
        trace_sample_every: 1,
        ..TrassConfig::for_extent(extent)
    };
    let store = TrajectoryStore::open(cfg).expect("open");
    store.insert_all(data).expect("insert");
    store.flush().expect("flush");
    store
}

#[test]
fn threshold_results_identical_with_and_without_bounds() {
    let data = generator::tdrive_like(11, 250);
    let queries = generator::sample_queries(&data, 3, 5);
    for threads in [1, 4] {
        let with = open_store(&data, true, threads);
        let without = open_store(&data, false, threads);
        for measure in MEASURES {
            for q in &queries {
                // Spans tight (few hits, heavy pruning) to wide (most
                // candidates are hits, bounds rarely fire).
                for eps in [0.0, 0.002, 0.01, 0.05] {
                    let a = query::threshold_search(&with, q, eps, measure).expect("bounds on");
                    let b = query::threshold_search(&without, q, eps, measure).expect("bounds off");
                    assert_eq!(
                        a.results, b.results,
                        "threshold divergence: threads={threads} measure={measure} \
                         eps={eps} query={}",
                        q.id
                    );
                }
            }
        }
    }
}

#[test]
fn topk_results_identical_with_and_without_bounds() {
    // Top-k is the adversarial case: the live TopKBound feeds refinement
    // a moving threshold, so bounds and kernel abandons fire against a
    // value that tightens mid-query. The ranked answer must not notice.
    let data = generator::tdrive_like(13, 250);
    let queries = generator::sample_queries(&data, 3, 23);
    for threads in [1, 4] {
        let with = open_store(&data, true, threads);
        let without = open_store(&data, false, threads);
        for measure in MEASURES {
            for q in &queries {
                for k in [1, 5, 20] {
                    let a = query::top_k_search(&with, q, k, measure).expect("bounds on");
                    let b = query::top_k_search(&without, q, k, measure).expect("bounds off");
                    assert_eq!(
                        a.results, b.results,
                        "topk divergence: threads={threads} measure={measure} k={k} query={}",
                        q.id
                    );
                }
            }
        }
    }
}

#[test]
fn range_results_identical_with_and_without_bounds() {
    // Range search never runs a similarity kernel, so this must hold
    // trivially — pinned so a future refactor routing range through the
    // refine context cannot silently change it.
    let data = generator::tdrive_like(19, 250);
    let with = open_store(&data, true, 1);
    let without = open_store(&data, false, 1);
    let window = Mbr::new(116.2, 39.8, 116.5, 40.0);
    let a = query::range_search(&with, &window).expect("bounds on");
    let b = query::range_search(&without, &window).expect("bounds off");
    assert_eq!(a.results, b.results);
}

#[test]
fn refine_attribution_accounts_for_every_candidate() {
    // Run with the local filter ablated: every retrieved row becomes a
    // refinement candidate, so the lower bounds face the unfiltered
    // stream. (With the local filter on, threshold candidates already
    // survived per-lemma checks at the same ε, so the refine bounds only
    // fire against top-k's tightening live bound.)
    let data = generator::tdrive_like(23, 200);
    let queries = generator::sample_queries(&data, 3, 31);
    let extent = Mbr::new(116.0, 39.6, 116.8, 40.2);
    let cfg = TrassConfig {
        refine_bounds: true,
        query_threads: 1,
        use_local_filter: false,
        ..TrassConfig::for_extent(extent)
    };
    let store = TrajectoryStore::open(cfg).expect("open");
    store.insert_all(&data).expect("insert");
    store.flush().expect("flush");
    let mut pruned_anywhere = 0u64;
    for measure in MEASURES {
        for q in &queries {
            let r = query::threshold_search(&store, q, 0.005, measure).expect("search");
            let s = &r.stats.refine_prune;
            assert_eq!(
                s.pruned_total() + s.abandoned + s.computed + s.corrupt,
                r.stats.candidates,
                "unattributed candidates: measure={measure} query={} {s:?}",
                q.id
            );
            assert_eq!(s.computed, r.stats.results, "every computed distance is a hit");
            pruned_anywhere += s.pruned_total();
        }
    }
    assert!(pruned_anywhere > 0, "bounds never fired — the differential tests are vacuous");

    // With bounds off nothing is ever attributed to a bound.
    let legacy = open_store(&data, false, 1);
    let r = query::threshold_search(&legacy, &queries[0], 0.005, Measure::Frechet).expect("legacy");
    assert_eq!(r.stats.refine_prune.pruned_total(), 0);
}

#[test]
fn corrupt_empty_row_is_skipped_not_a_panic() {
    // Regression for the empty-sequence panic surface: a stored row whose
    // value decodes to zero points must be skipped (and counted) wherever
    // it surfaces, never passed to an exact kernel that asserts non-empty
    // input. Overwrite one row in place with an empty-point value and run
    // the full query matrix over it.
    let data = generator::tdrive_like(29, 50);
    let victim = data[0].id;
    for refine_bounds in [true, false] {
        let store = open_store(&data, refine_bounds, 1);
        let rows = store.cluster().scan(trass_kv::KeyRange::all()).expect("scan");
        let key = rows
            .iter()
            .find(|r| parse_rowkey(&r.key).is_some_and(|(_, _, tid)| tid == victim))
            .expect("victim row present")
            .key
            .clone();
        let empty = RowValue {
            points: Vec::new(),
            features: DpFeatures {
                rep_indices: Vec::new(),
                rep_points: Vec::new(),
                boxes: Vec::new(),
            },
        };
        store.cluster().put(key, empty.encode()).expect("put");
        store.cluster().flush().expect("flush");

        let q = &data[0];
        for measure in MEASURES {
            let r = query::threshold_search(&store, q, 0.01, measure).expect("threshold");
            assert!(
                r.results.iter().all(|&(tid, _)| tid != victim),
                "corrupt row {victim} leaked into results (bounds={refine_bounds}, {measure})"
            );
            let t = query::top_k_search(&store, q, 5, measure).expect("topk");
            assert!(t.results.iter().all(|&(tid, _)| tid != victim));
        }
    }
}
