//! The PR-level determinism contract: a store opened with `query_threads
//! = 4` answers every query with byte-identical results and ordering to a
//! store opened with `query_threads = 1` over the same data. CI runs the
//! whole test suite under `TRASS_QUERY_THREADS={1,4}` as well; this test
//! makes the comparison direct, in one process, with no env involvement.

use trass_core::config::TrassConfig;
use trass_core::query;
use trass_core::store::TrajectoryStore;
use trass_geo::Mbr;
use trass_traj::{generator, Measure, Trajectory};

fn store_with(data: &[Trajectory], threads: usize, refine_bounds: bool) -> TrajectoryStore {
    let extent = Mbr::new(116.0, 39.6, 116.8, 40.2);
    let cfg = TrassConfig {
        query_threads: threads,
        refine_bounds,
        // Trace everything so the comparison also exercises the traced
        // span paths, not just the untraced fast path.
        trace_sample_every: 1,
        ..TrassConfig::for_extent(extent)
    };
    let store = TrajectoryStore::open(cfg).expect("open");
    store.insert_all(data).expect("insert");
    store.flush().expect("flush");
    store
}

fn store_with_threads(data: &[Trajectory], threads: usize) -> TrajectoryStore {
    store_with(data, threads, true)
}

#[test]
fn threshold_results_identical_across_thread_counts() {
    let data = generator::tdrive_like(17, 250);
    let queries = generator::sample_queries(&data, 4, 3);
    let sequential = store_with_threads(&data, 1);
    let parallel = store_with_threads(&data, 4);
    for measure in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
        for q in &queries {
            for eps in [0.002, 0.02] {
                let a = query::threshold_search(&sequential, q, eps, measure).expect("seq");
                let b = query::threshold_search(&parallel, q, eps, measure).expect("par");
                assert_eq!(
                    a.results, b.results,
                    "threshold divergence: measure={measure} eps={eps} query={}",
                    q.id
                );
            }
        }
    }
}

#[test]
fn topk_results_identical_across_thread_counts() {
    let data = generator::tdrive_like(29, 250);
    let queries = generator::sample_queries(&data, 3, 11);
    let sequential = store_with_threads(&data, 1);
    let parallel = store_with_threads(&data, 4);
    for measure in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
        for q in &queries {
            for k in [1, 10] {
                let a = query::top_k_search(&sequential, q, k, measure).expect("seq");
                let b = query::top_k_search(&parallel, q, k, measure).expect("par");
                assert_eq!(
                    a.results, b.results,
                    "topk divergence: measure={measure} k={k} query={}",
                    q.id
                );
            }
        }
    }
}

#[test]
fn results_identical_across_threads_and_refine_bounds() {
    // The full 2×2 grid: refine lower bounds {on, off} × query_threads
    // {1, 4} must agree on every threshold and top-k answer — ids, order
    // and exact distances. `tests/refine_exactness.rs` goes deeper on the
    // bounds axis; this keeps the thread-interaction corner pinned here
    // with the rest of the determinism contract.
    let data = generator::tdrive_like(41, 250);
    let queries = generator::sample_queries(&data, 3, 7);
    let stores: Vec<(bool, usize, TrajectoryStore)> =
        [(true, 1), (true, 4), (false, 1), (false, 4)]
            .into_iter()
            .map(|(bounds, threads)| (bounds, threads, store_with(&data, threads, bounds)))
            .collect();
    for measure in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
        for q in &queries {
            let baseline = query::threshold_search(&stores[0].2, q, 0.01, measure).expect("base");
            let base_topk = query::top_k_search(&stores[0].2, q, 5, measure).expect("base topk");
            for (bounds, threads, store) in &stores[1..] {
                let r = query::threshold_search(store, q, 0.01, measure).expect("threshold");
                assert_eq!(
                    baseline.results, r.results,
                    "threshold divergence: bounds={bounds} threads={threads} \
                     measure={measure} query={}",
                    q.id
                );
                let t = query::top_k_search(store, q, 5, measure).expect("topk");
                assert_eq!(
                    base_topk.results, t.results,
                    "topk divergence: bounds={bounds} threads={threads} \
                     measure={measure} query={}",
                    q.id
                );
            }
        }
    }
}

#[test]
fn scan_row_order_identical_across_thread_counts() {
    // Byte-level check one layer down: the raw rows a range query scans
    // arrive in the same order, so every downstream consumer (refine,
    // traces, stats) sees one canonical sequence.
    let data = generator::tdrive_like(31, 200);
    let sequential = store_with_threads(&data, 1);
    let parallel = store_with_threads(&data, 4);
    let a = sequential.cluster().scan(trass_kv::KeyRange::all()).expect("seq scan");
    let b = parallel.cluster().scan(trass_kv::KeyRange::all()).expect("par scan");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.value, y.value);
    }
}

#[test]
fn range_query_identical_across_thread_counts() {
    let data = generator::tdrive_like(37, 250);
    let sequential = store_with_threads(&data, 1);
    let parallel = store_with_threads(&data, 4);
    let window = Mbr::new(116.2, 39.8, 116.5, 40.0);
    let a = query::range_search(&sequential, &window).expect("seq");
    let b = query::range_search(&parallel, &window).expect("par");
    assert_eq!(a.results, b.results);
}
