//! End-to-end smoke test of the `trass` CLI binary: load a CSV, then run
//! every query subcommand against the on-disk deployment.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trass"))
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("spawn trass");
    assert!(
        out.status.success(),
        "trass {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn cli_full_workflow() {
    let dir = std::env::temp_dir().join(format!("trass-cli-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let deploy = dir.join("deploy");
    let csv_path = dir.join("trips.csv");

    // Three trips: two near-identical, one far away.
    let mut csv = std::fs::File::create(&csv_path).unwrap();
    for (tid, dy) in [(1u64, 0.0), (2, 0.001), (3, 0.3)] {
        for i in 0..10 {
            writeln!(csv, "{tid},{},{}", 116.30 + i as f64 * 0.002, 39.90 + dy).unwrap();
        }
    }
    drop(csv);

    // load
    let out =
        run_ok(&["load", "--data", deploy.to_str().unwrap(), "--csv", csv_path.to_str().unwrap()]);
    assert!(out.contains("loaded 3 trajectories"), "{out}");

    // sim: trip 1 within 0.005° matches 1 and 2.
    let out =
        run_ok(&["sim", "--data", deploy.to_str().unwrap(), "--query", "1", "--eps", "0.005"]);
    assert!(out.contains("2 matches"), "{out}");

    // topk
    let out = run_ok(&["topk", "--data", deploy.to_str().unwrap(), "--query", "1", "--k", "2"]);
    assert!(out.contains("top-2"), "{out}");

    // range covering everything
    let out =
        run_ok(&["range", "--data", deploy.to_str().unwrap(), "--window", "116.0,39.5,117.0,40.5"]);
    assert!(out.contains("3 trajectories"), "{out}");

    // get
    let out = run_ok(&["get", "--data", deploy.to_str().unwrap(), "--tid", "3"]);
    assert!(out.contains("10 points"), "{out}");

    // stats
    let out = run_ok(&["stats", "--data", deploy.to_str().unwrap()]);
    assert!(out.contains("regions:"), "{out}");

    // Unknown trajectory fails cleanly.
    let out =
        bin().args(["get", "--data", deploy.to_str().unwrap(), "--tid", "999"]).output().unwrap();
    assert!(!out.status.success());

    // Hausdorff measure flag parses.
    let out = run_ok(&[
        "sim",
        "--data",
        deploy.to_str().unwrap(),
        "--query",
        "1",
        "--eps",
        "0.005",
        "--measure",
        "hausdorff",
    ]);
    assert!(out.contains("hausdorff"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_usage() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    let out = bin().args(["sim"]).output().unwrap();
    assert!(!out.status.success());
    let out = bin().args(["frobnicate", "--data", "/tmp/x"]).output().unwrap();
    assert!(!out.status.success());
}
