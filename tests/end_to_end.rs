//! Cross-crate integration tests: the full TraSS pipeline from generated
//! workload through storage, pruning, filtering, and refinement, verified
//! against brute force — plus agreement between TraSS and every baseline
//! engine.

use trass::baselines::dft::DftEngine;
use trass::baselines::dita::DitaEngine;
use trass::baselines::repose::ReposeEngine;
use trass::baselines::xz_kv::build_for_extent;
use trass::baselines::SimilarityEngine;
use trass::core::{query, TrajectoryStore, TrassConfig};
use trass::traj::generator::{self, BEIJING};
use trass::traj::{Measure, Trajectory};

fn build_store(data: &[Trajectory]) -> TrajectoryStore {
    let store = TrajectoryStore::open(TrassConfig::for_extent(BEIJING)).unwrap();
    store.insert_all(data).unwrap();
    store.flush().unwrap();
    store
}

fn brute_threshold(data: &[Trajectory], q: &Trajectory, eps: f64, m: Measure) -> Vec<u64> {
    let mut ids: Vec<u64> =
        data.iter().filter(|t| m.within(q.points(), t.points(), eps)).map(|t| t.id).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn trass_threshold_equals_brute_force_across_measures_and_eps() {
    let data = generator::tdrive_like(101, 400);
    let store = build_store(&data);
    let queries = generator::sample_queries(&data, 6, 55);
    for measure in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
        for q in &queries {
            for eps in [0.001, 0.01] {
                let got: Vec<u64> = query::threshold_search(&store, q, eps, measure)
                    .unwrap()
                    .results
                    .iter()
                    .map(|&(id, _)| id)
                    .collect();
                assert_eq!(
                    got,
                    brute_threshold(&data, q, eps, measure),
                    "measure {measure}, eps {eps}, query {}",
                    q.id
                );
            }
        }
    }
}

#[test]
fn all_engines_agree_on_threshold_results() {
    let data = generator::tdrive_like(103, 300);
    let store = build_store(&data);
    let dft = DftEngine::build(data.clone(), 9);
    let dita = DitaEngine::build(data.clone());
    let just = build_for_extent(&data, BEIJING);
    let queries = generator::sample_queries(&data, 4, 77);
    for q in &queries {
        let eps = 0.005;
        let expected = brute_threshold(&data, q, eps, Measure::Frechet);
        let trass: Vec<u64> = query::threshold_search(&store, q, eps, Measure::Frechet)
            .unwrap()
            .results
            .iter()
            .map(|&(id, _)| id)
            .collect();
        assert_eq!(trass, expected, "TraSS disagrees");
        for (name, got) in [
            ("DFT", dft.threshold(q, eps, Measure::Frechet)),
            ("DITA", dita.threshold(q, eps, Measure::Frechet)),
            ("JUST", just.threshold(q, eps, Measure::Frechet)),
        ] {
            let ids: Vec<u64> = got.unwrap().results.iter().map(|&(id, _)| id).collect();
            assert_eq!(ids, expected, "{name} disagrees");
        }
    }
}

#[test]
fn all_engines_agree_on_topk_distances() {
    let data = generator::tdrive_like(107, 250);
    let store = build_store(&data);
    let dft = DftEngine::build(data.clone(), 5);
    let dita = DitaEngine::build(data.clone());
    let just = build_for_extent(&data, BEIJING);
    let repose = ReposeEngine::build(data.clone(), 5);
    let q = &data[31];
    let k = 12;

    let mut expected: Vec<f64> =
        data.iter().map(|t| Measure::Frechet.distance(q.points(), t.points())).collect();
    expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
    expected.truncate(k);

    let trass = query::top_k_search(&store, q, k, Measure::Frechet).unwrap();
    let trass_d: Vec<f64> = trass.results.iter().map(|&(_, d)| d).collect();
    for (g, e) in trass_d.iter().zip(expected.iter()) {
        assert!((g - e).abs() < 1e-9, "TraSS {trass_d:?} vs {expected:?}");
    }
    for (name, engine) in [
        ("DFT", &dft as &dyn SimilarityEngine),
        ("DITA", &dita),
        ("JUST", &just),
        ("REPOSE", &repose),
    ] {
        let got = engine.top_k(q, k, Measure::Frechet).unwrap();
        let got_d: Vec<f64> = got.results.iter().map(|&(_, d)| d).collect();
        assert_eq!(got_d.len(), k, "{name} returned {} results", got_d.len());
        for (g, e) in got_d.iter().zip(expected.iter()) {
            assert!((g - e).abs() < 1e-9, "{name}: {got_d:?} vs {expected:?}");
        }
    }
}

#[test]
fn trass_scans_less_io_than_xz2_baseline() {
    // The headline claim, end to end: same data, same KV substrate, fewer
    // rows retrieved.
    let data = generator::tdrive_like(109, 500);
    let store = build_store(&data);
    let just = build_for_extent(&data, BEIJING);
    let queries = generator::sample_queries(&data, 8, 3);
    let mut trass_rows = 0u64;
    let mut just_rows = 0u64;
    for q in &queries {
        let r = query::threshold_search(&store, q, 0.005, Measure::Frechet).unwrap();
        trass_rows += r.stats.retrieved;
        just_rows += just.threshold(q, 0.005, Measure::Frechet).unwrap().retrieved;
    }
    assert!(trass_rows < just_rows, "TraSS retrieved {trass_rows} rows, XZ2 {just_rows}");
}

#[test]
fn lorry_scale_roundtrip() {
    // Country-scale extents exercise coarse resolutions.
    let data = generator::lorry_like(111, 200);
    let store = {
        let store = TrajectoryStore::open(TrassConfig::for_extent(generator::CHINA)).unwrap();
        store.insert_all(&data).unwrap();
        store.flush().unwrap();
        store
    };
    let q = &data[50];
    let got: Vec<u64> = query::threshold_search(&store, q, 0.05, Measure::Frechet)
        .unwrap()
        .results
        .iter()
        .map(|&(id, _)| id)
        .collect();
    assert_eq!(got, brute_threshold(&data, q, 0.05, Measure::Frechet));
}

#[test]
fn disk_backed_store_survives_reopen_with_queries() {
    let dir = std::env::temp_dir().join(format!("trass-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let data = generator::tdrive_like(113, 150);
    let cfg = || {
        let mut c = TrassConfig::for_extent(BEIJING);
        c.store = trass::kv::StoreOptions::at_dir(&dir);
        c
    };
    {
        let store = TrajectoryStore::open(cfg()).unwrap();
        store.insert_all(&data).unwrap();
        // No flush: recovery must come from the WAL.
    }
    {
        let store = TrajectoryStore::open(cfg()).unwrap();
        let q = &data[10];
        let got: Vec<u64> = query::threshold_search(&store, q, 0.005, Measure::Frechet)
            .unwrap()
            .results
            .iter()
            .map(|&(id, _)| id)
            .collect();
        assert_eq!(got, brute_threshold(&data, q, 0.005, Measure::Frechet));
    }
    std::fs::remove_dir_all(&dir).ok();
}
