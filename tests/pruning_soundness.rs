//! Property-based soundness tests for the whole pruning stack: no stage —
//! global pruning, local filtering, refinement — may ever lose a truly
//! similar trajectory. These are the invariants the paper's lemmas prove;
//! here proptest hunts for counterexamples across random workloads.

use proptest::prelude::*;
use trass::core::query::{LocalFilter, QuerySide};
use trass::core::schema::RowValue;
use trass::geo::{Mbr, NormalizedSpace, Point};
use trass::index::xzstar::{GlobalPruning, PruningConfig, QueryContext, XzStar};
use trass::traj::{DpFeatures, Measure, Trajectory};

/// Random trajectory inside the unit-ish city box.
fn traj_strategy() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.05f64..0.95, 0.05f64..0.95), 1..25)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

/// Random trajectory kept away from the boundary, so bounded translations
/// stay inside the unit square.
fn inner_traj_strategy() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.15f64..0.85, 0.15f64..0.85), 1..25)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemmas 1–2 + position codes: the index space always covers the
    /// trajectory, and the code's quads are exactly the touched quads.
    #[test]
    fn index_space_covers_trajectory(points in traj_strategy()) {
        let index = XzStar::new(12);
        let space = index.index_points(&points);
        let ee = space.cell.enlarged().extended(1e-12);
        for p in &points {
            prop_assert!(ee.contains_point(p), "point {p} outside enlarged element");
        }
        // Every quad in the code contains at least one point; every point
        // falls in a quad of the code.
        let rects = XzStar::quad_rects(&space.cell);
        let quads = space.code.quads();
        for q in quads.iter() {
            let rect = rects[q.quad_index().unwrap()];
            prop_assert!(
                points.iter().any(|p| rect.extended(1e-12).contains_point(p)),
                "code quad without points"
            );
        }
    }

    /// Global pruning soundness: any trajectory within eps of the query
    /// (under Fréchet, therefore any measure obeying Lemma 5) lives in an
    /// index space the pruner keeps. Similar pairs are *constructed* — a
    /// translated copy of the query has Fréchet distance exactly the
    /// translation norm — so every case exercises the property.
    #[test]
    fn global_pruning_keeps_similar_trajectories(
        q_points in inner_traj_strategy(),
        dx in -0.1f64..0.1,
        dy in -0.1f64..0.1,
        slack in 0.0f64..0.05,
    ) {
        let index = XzStar::new(12);
        let t_points: Vec<Point> =
            q_points.iter().map(|p| Point::new(p.x + dx, p.y + dy)).collect();
        let d = Measure::Frechet.distance(&q_points, &t_points);
        let eps = d + slack;
        let t_value = index.encode(&index.index_points(&t_points));
        let pruner = GlobalPruning::new(&index, PruningConfig::default());
        let ctx = QueryContext::new(&index, q_points, eps);
        let values = pruner.query_values(&ctx);
        prop_assert!(
            values.contains(&t_value),
            "similar trajectory (d = {d}) pruned at eps = {eps}"
        );
    }

    /// Local filtering soundness: a row within eps always passes the
    /// Lemma 12–14 stack, for every measure. Pairs are a mix of random
    /// (usually far — exercising the reject path never firing below d) and
    /// translated copies (guaranteed close).
    #[test]
    fn local_filter_keeps_similar_rows(
        q_points in inner_traj_strategy(),
        dx in -0.1f64..0.1,
        dy in -0.1f64..0.1,
        slack in 0.0f64..0.1,
        theta in 0.001f64..0.05,
    ) {
        let t_points: Vec<Point> =
            q_points.iter().map(|p| Point::new(p.x + dx, p.y + dy)).collect();
        for measure in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
            let d = measure.distance(&q_points, &t_points);
            let eps = d + slack;
            let q = Trajectory::new(0, q_points.clone());
            let t = Trajectory::new(1, t_points.clone());
            let side = QuerySide::new(&q, theta, measure);
            let filter = LocalFilter::new(side, eps);
            let row = RowValue {
                points: t.points().to_vec(),
                features: DpFeatures::extract(&t, theta),
            };
            prop_assert!(
                filter.passes(&row),
                "{measure}: similar row (d = {d}) filtered at eps = {eps}, theta = {theta}"
            );
        }
    }

    /// XZ* encoding stays bijective over random trajectories.
    #[test]
    fn encode_decode_roundtrip_random(points in traj_strategy()) {
        for r in [4u8, 10, 16] {
            let index = XzStar::new(r);
            let space = index.index_points(&points);
            let value = index.encode(&space);
            prop_assert_eq!(index.decode(value), Some(space));
        }
    }

    /// World→unit mapping preserves relative distances exactly for square
    /// spaces (the assumption the cross-space pruning relies on).
    #[test]
    fn square_space_distance_consistency(
        ax in -170.0f64..170.0, ay in -80.0f64..80.0,
        bx in -170.0f64..170.0, by in -80.0f64..80.0,
    ) {
        let space = NormalizedSpace::square(Mbr::new(-180.0, -90.0, 180.0, 90.0));
        let (a, b) = (Point::new(ax, ay), Point::new(bx, by));
        let world_d = a.distance(&b);
        let unit_d = space.to_unit(&a).distance(&space.to_unit(&b));
        prop_assert!((space.distance_to_unit(world_d) - unit_d).abs() < 1e-12);
    }
}
